"""Tests of the persistent content-addressed store (repro.store)."""

import json
import multiprocessing
import os

import pytest

from repro.api import SynthesisRequest, SynthesisResponse
from repro.store import (
    BlobStore,
    STORE_ROOT_ENV,
    STORE_SCHEMA_VERSION,
    content_key,
    default_store_root,
    open_store,
)
from repro.suite.registry import get_benchmark

SUM = get_benchmark("sum")


def make_request(**overrides) -> SynthesisRequest:
    fields = dict(
        program=SUM.source,
        mode="weak",
        precondition=SUM.precondition,
        objective=SUM.objective(),
        options=SUM.options(upsilon=1),
        request_id="sum",
    )
    fields.update(overrides)
    return SynthesisRequest(**fields)


# -- keys --------------------------------------------------------------------------


def test_content_key_is_stable_and_order_sensitive():
    assert content_key("a", 1, {"x": [1, 2]}) == content_key("a", 1, {"x": [1, 2]})
    assert content_key("a", 1) != content_key(1, "a")
    key = content_key("anything")
    assert len(key) == 64 and set(key) <= set("0123456789abcdef")


def test_response_key_ignores_request_id_but_not_payload(tmp_path):
    store = open_store(tmp_path)
    base = store.responses.key_for(make_request(), "opts")
    assert store.responses.key_for(make_request(request_id="other"), "opts") == base
    assert store.responses.key_for(make_request(options=SUM.options(upsilon=2)), "opts") != base
    assert store.responses.key_for(make_request(), "different-opts") != base


def test_solve_key_shares_across_verification_tiers(tmp_path):
    store = open_store(tmp_path)
    none_tier = make_request()
    exact_tier = make_request(options=SUM.options(upsilon=1, verify="exact"))
    assert store.solves.key_for(none_tier, False, "opts") == store.solves.key_for(
        exact_tier, False, "opts"
    )
    assert store.solves.key_for(none_tier, False, "opts") != store.solves.key_for(
        none_tier, True, "opts"
    )


# -- blob mechanics ----------------------------------------------------------------


def test_blob_roundtrip_and_sharded_layout(tmp_path):
    blobs = BlobStore(tmp_path)
    key = content_key("payload")
    assert blobs.put("responses", key, {"v": 1, "data": [1, 2]})
    assert blobs.get("responses", key) == {"v": 1, "data": [1, 2]}
    path = blobs.path_for("responses", key)
    assert os.path.exists(path)
    # Sharded: <root>/<namespace>/<key[:2]>/<key>.json
    assert os.path.relpath(path, tmp_path) == os.path.join("responses", key[:2], f"{key}.json")
    stats = blobs.stats()
    assert stats["store_blob_writes"] == 1 and stats["store_blob_reads"] == 1


def test_usage_reports_per_namespace_blob_and_byte_counts(tmp_path):
    blobs = BlobStore(tmp_path)
    key_a, key_b = content_key("a"), content_key("b")
    blobs.put("responses", key_a, {"v": 1})
    blobs.put("responses", key_b, {"v": 2, "data": list(range(50))})
    blobs.put("solves", key_a, {"v": 3})
    usage = blobs.usage(("responses", "solves", "certificates"))
    assert usage["store_responses_blobs"] == 2.0
    assert usage["store_solves_blobs"] == 1.0
    assert usage["store_certificates_blobs"] == 0.0  # namespace not created yet
    assert usage["store_responses_bytes"] > usage["store_solves_bytes"] > 0.0
    assert usage["store_total_bytes"] == (
        usage["store_responses_bytes"] + usage["store_solves_bytes"]
    )
    # Auto-discovery walks whatever namespaces exist on disk.
    assert blobs.usage()["store_total_bytes"] == usage["store_total_bytes"]
    # The engine-store stats document carries the usage block (this is what
    # GET /v1/stats serves).
    stats = open_store(tmp_path).stats()
    assert stats["store_total_bytes"] == usage["store_total_bytes"]
    assert stats["store_responses_blobs"] == 2.0


def test_blob_write_once_skips_then_overwrites(tmp_path):
    blobs = BlobStore(tmp_path)
    key = content_key("k")
    assert blobs.put("solves", key, {"first": True})
    assert not blobs.put("solves", key, {"second": True})
    assert blobs.get("solves", key) == {"first": True}
    assert blobs.put("solves", key, {"second": True}, overwrite=True)
    assert blobs.get("solves", key) == {"second": True}
    assert blobs.stats()["store_blob_write_skips"] == 1


def test_invalid_namespace_and_key_are_rejected(tmp_path):
    blobs = BlobStore(tmp_path)
    with pytest.raises(ValueError):
        blobs.path_for("../escape", content_key("k"))
    with pytest.raises(ValueError):
        blobs.path_for("responses", "../../etc/passwd")
    with pytest.raises(ValueError):
        blobs.path_for("responses", "UPPER")


def test_keys_and_count_enumerate_namespace(tmp_path):
    blobs = BlobStore(tmp_path)
    written = {content_key("k", i) for i in range(5)}
    for key in written:
        blobs.put("certificates", key, {"v": 1})
    assert set(blobs.keys("certificates")) == written
    assert blobs.count("certificates") == 5
    assert blobs.count("responses") == 0


# -- the miss-and-repair boundary --------------------------------------------------


def test_truncated_blob_degrades_to_miss_and_is_repaired(tmp_path):
    blobs = BlobStore(tmp_path)
    key = content_key("will-truncate")
    blobs.put("responses", key, {"v": 1, "payload": "x" * 256})
    path = blobs.path_for("responses", key)
    with open(path, "r+b") as handle:  # hand-truncate mid-document
        handle.truncate(os.path.getsize(path) // 2)
    assert blobs.get("responses", key) is None
    assert blobs.stats()["store_blob_corrupt"] == 1
    assert not os.path.exists(path)  # repaired: the corpse is gone
    # The slot accepts a rewrite afterwards.
    assert blobs.put("responses", key, {"v": 1, "payload": "fresh"})
    assert blobs.get("responses", key) == {"v": 1, "payload": "fresh"}


def test_non_object_blob_degrades_to_miss(tmp_path):
    blobs = BlobStore(tmp_path)
    key = content_key("not-an-object")
    path = blobs.path_for("responses", key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        handle.write("[1, 2, 3]")
    assert blobs.get("responses", key) is None


def test_schema_drifted_response_blob_is_a_view_level_miss(tmp_path):
    store = open_store(tmp_path)
    key = store.responses.key_for(make_request(), "opts")
    # A decodable blob whose document no longer matches the response codec.
    store.blobs.put(
        "responses", key, {"v": STORE_SCHEMA_VERSION, "response": {"status": "bogus"}}
    )
    assert store.responses.load(key) is None
    assert not os.path.exists(store.blobs.path_for("responses", key))


def test_foreign_schema_version_is_a_miss_without_repair(tmp_path):
    store = open_store(tmp_path)
    key = content_key("future")
    store.blobs.put("responses", key, {"v": STORE_SCHEMA_VERSION + 1, "response": {}})
    assert store.responses.load(key) is None
    # A *newer* schema is not corruption: leave it for the newer code.
    assert os.path.exists(store.blobs.path_for("responses", key))


# -- view gating -------------------------------------------------------------------


def test_response_store_only_persists_verified_successes(tmp_path):
    store = open_store(tmp_path)
    key = content_key("gate")
    no_invariant = SynthesisResponse(mode="weak", status="no_invariant")
    assert not store.responses.store(key, no_invariant)
    unverified = SynthesisResponse(
        mode="weak", status="ok", verification={"verified": False}
    )
    assert not store.responses.store(key, unverified)
    ok = SynthesisResponse(mode="weak", status="ok", invariants=[{"assertions": []}])
    assert store.responses.store(key, ok)
    loaded = store.responses.load(key)
    assert loaded is not None and loaded.served_from_store is False
    assert loaded == ok


def test_certificate_store_roundtrip(tmp_path):
    from repro.certify.certificate import certificate_fingerprint

    store = open_store(tmp_path)
    payload = {"kind": "certificate", "denominator": "7", "assignment": {"c": "1/7"}}
    key, wrote = store.certificates.put(payload)
    assert wrote and key == certificate_fingerprint(payload)
    again, wrote_again = store.certificates.put(payload)
    assert again == key and not wrote_again


# -- environment and defaults ------------------------------------------------------


def test_default_store_root_honours_environment(tmp_path, monkeypatch):
    monkeypatch.setenv(STORE_ROOT_ENV, str(tmp_path / "deployment"))
    assert default_store_root() == str(tmp_path / "deployment")


def test_open_store_coerces_every_spec(tmp_path):
    store = open_store(tmp_path)
    assert open_store(store) is store
    assert open_store(store.blobs).root == store.root
    assert open_store(str(tmp_path)).root == store.root
    assert store.corpus_path == os.path.join(str(tmp_path), "corpus", "solve_corpus.jsonl")


# -- concurrent writers ------------------------------------------------------------


def _hammer(args):
    root, worker, rounds = args
    blobs = BlobStore(root)
    bad = 0
    for i in range(rounds):
        key = content_key("shared", i % 7)
        # Everyone races to publish the same 7 slots with self-identifying
        # payloads; interleaved writers must never produce a torn read.
        blobs.put("responses", key, {"v": 1, "worker": worker, "round": i, "pad": "y" * 512})
        seen = blobs.get("responses", key)
        if seen is not None and (seen.get("v") != 1 or len(seen.get("pad", "")) != 512):
            bad += 1
    return bad


def test_concurrent_writers_never_corrupt_a_blob(tmp_path):
    rounds = 40
    with multiprocessing.get_context("spawn").Pool(3) as pool:
        torn = pool.map(_hammer, [(str(tmp_path), worker, rounds) for worker in range(3)])
    assert sum(torn) == 0
    blobs = BlobStore(tmp_path)
    assert blobs.count("responses") == 7
    for key in blobs.keys("responses"):
        payload = blobs.get("responses", key)
        assert payload is not None and len(payload["pad"]) == 512
        # Write-once means the first publisher won; the blob is one writer's
        # complete document, never a blend.
        assert payload["worker"] in (0, 1, 2)
    assert blobs.stats()["store_blob_corrupt"] == 0
