"""Tests of the typed request surface (repro.api.request)."""

import json

import pytest

from repro.api import RequestValidationError, SynthesisRequest, objective_from_dict, objective_to_dict
from repro.api.request import precondition_to_spec
from repro.invariants.synthesis import SynthesisOptions
from repro.lang.parser import parse_program
from repro.polynomial.parse import parse_polynomial
from repro.solvers.base import SolverOptions
from repro.spec.objectives import (
    FeasibilityObjective,
    LinearCoefficientObjective,
    TargetInvariantObjective,
    TargetPostconditionObjective,
)
from repro.spec.preconditions import Precondition
from repro.suite.registry import get_benchmark

SUM = get_benchmark("sum")


def sum_request(**overrides) -> SynthesisRequest:
    fields = dict(
        program=SUM.source,
        mode="weak",
        precondition=SUM.precondition,
        objective=SUM.objective(),
        options=SUM.options(upsilon=1),
        solver_options=SolverOptions(restarts=1, max_iterations=50, time_limit=5.0),
        deadline=30.0,
        request_id="sum",
    )
    fields.update(overrides)
    return SynthesisRequest(**fields)


# -- JSON round-trip --------------------------------------------------------------


def test_request_round_trips_through_json():
    request = sum_request()
    clone = SynthesisRequest.from_json(request.to_json())
    assert clone == request
    # The JSON form itself is stable under a second round trip.
    assert clone.to_dict() == request.to_dict()


def test_request_json_is_plain_data():
    payload = json.loads(sum_request().to_json(indent=2))
    assert payload["mode"] == "weak"
    assert payload["options"]["upsilon"] == 1
    assert isinstance(payload["precondition"], dict)
    assert payload["objective"]["kind"] == "target-invariant"


def test_program_ast_is_normalised_to_source():
    request = SynthesisRequest(program=parse_program(SUM.source))
    assert isinstance(request.program, str)
    # The normalised source re-parses to the same program shape.
    assert parse_program(request.program).functions[0].name == "sum"


def test_precondition_object_serialises_to_spec():
    from repro.cfg.builder import build_cfg

    cfg = build_cfg(parse_program(SUM.source))
    precondition = Precondition.from_spec(cfg, {"sum": {1: "n >= 1"}})
    spec = precondition_to_spec(precondition)
    assert set(spec) == {"sum"} and set(spec["sum"]) == {1}
    # The rendered text re-parses into an equivalent precondition.
    rebuilt = Precondition.from_spec(cfg, spec)
    label = cfg.function("sum").label_by_index(1)
    assert rebuilt.at(label).holds({"n": 2.0})
    assert not rebuilt.at(label).holds({"n": 0.0})


# -- objective codec --------------------------------------------------------------


@pytest.mark.parametrize(
    "objective",
    [
        FeasibilityObjective(),
        TargetInvariantObjective(function="sum", label_index=9, target=parse_polynomial("1 + n - x")),
        TargetPostconditionObjective(function="sum", target=parse_polynomial("n_init - ret_sum")),
        LinearCoefficientObjective(weights={"s_1": 1.0, "s_2": -2.5}),
    ],
)
def test_objective_round_trips(objective):
    assert objective_from_dict(objective_to_dict(objective)) == objective


def test_unknown_objective_kind_is_structured_error():
    with pytest.raises(RequestValidationError) as info:
        objective_from_dict({"kind": "maximise-profit"})
    assert info.value.errors[0]["field"] == "objective.kind"


# -- validation -------------------------------------------------------------------


def test_unknown_mode_is_rejected():
    with pytest.raises(RequestValidationError) as info:
        SynthesisRequest(program=SUM.source, mode="weakest")
    assert any(entry["field"] == "mode" for entry in info.value.errors)


def test_strong_mode_rejects_objective():
    with pytest.raises(RequestValidationError) as info:
        SynthesisRequest(program=SUM.source, mode="strong", objective=FeasibilityObjective())
    assert any(entry["field"] == "objective" for entry in info.value.errors)


def test_empty_program_is_rejected():
    with pytest.raises(RequestValidationError) as info:
        SynthesisRequest(program="   ")
    assert info.value.errors[0]["field"] == "program"


def test_negative_deadline_is_rejected():
    with pytest.raises(RequestValidationError) as info:
        SynthesisRequest(program=SUM.source, deadline=-1.0)
    assert any(entry["field"] == "deadline" for entry in info.value.errors)


def test_multiple_violations_are_all_reported():
    with pytest.raises(RequestValidationError) as info:
        SynthesisRequest(program="", mode="nope", deadline=0)
    fields = {entry["field"] for entry in info.value.errors}
    assert {"program", "mode", "deadline"} <= fields


def test_from_dict_rejects_unknown_fields():
    payload = sum_request().to_dict()
    payload["solver"] = "loqo"
    with pytest.raises(RequestValidationError) as info:
        SynthesisRequest.from_dict(payload)
    assert "solver" in str(info.value)


def test_from_dict_rejects_unknown_option_fields():
    payload = sum_request().to_dict()
    payload["options"]["upsilon_max"] = 3
    with pytest.raises(RequestValidationError) as info:
        SynthesisRequest.from_dict(payload)
    assert any(entry["field"] == "options" for entry in info.value.errors)


def test_from_json_rejects_invalid_json_and_non_objects():
    with pytest.raises(RequestValidationError):
        SynthesisRequest.from_json("{not json")
    with pytest.raises(RequestValidationError):
        SynthesisRequest.from_json('["a", "list"]')


def test_precondition_label_indices_are_normalised_to_int():
    request = SynthesisRequest(program=SUM.source, precondition={"sum": {"1": "n >= 0"}})
    assert request.precondition == {"sum": {1: "n >= 0"}}


def test_options_survive_strategy_and_portfolio():
    options = SynthesisOptions(upsilon=1, strategy="portfolio", portfolio=("qclp", "gauss-newton"))
    request = SynthesisRequest(program=SUM.source, options=options)
    clone = SynthesisRequest.from_json(request.to_json())
    assert clone.options == options
