"""Snapshot of the public API surface.

These lists are the checked-in contract: adding, removing or renaming a
public name must update them deliberately, so accidental surface breaks fail
CI instead of shipping silently.
"""

import repro
import repro.api
import repro.certify
import repro.reduction

EXPECTED_REPRO_ALL = [
    "AUTO_DEGREE",
    "AlternatingSolver",
    "BlobStore",
    "Certificate",
    "CertificateCheck",
    "CheckReport",
    "CompiledProblem",
    "ConjunctiveAssertion",
    "Engine",
    "EngineStore",
    "ErrorInfo",
    "EscalationTrace",
    "FeasibilityObjective",
    "GaussNewtonSolver",
    "InfeasibleError",
    "Interpreter",
    "Invariant",
    "LiftResult",
    "Monomial",
    "ParseError",
    "PenaltyQCLPSolver",
    "Polynomial",
    "PolynomialError",
    "PortfolioSolver",
    "Postcondition",
    "Precondition",
    "QuadraticSystem",
    "ReductionPlan",
    "RepresentativeEnumerator",
    "ReproError",
    "RequestValidationError",
    "SchedulePlan",
    "Scheduler",
    "SemanticsError",
    "SolveCorpus",
    "SolverError",
    "SpecificationError",
    "StageCache",
    "SynthesisError",
    "SynthesisHandle",
    "SynthesisJob",
    "SynthesisOptions",
    "SynthesisPipeline",
    "SynthesisRequest",
    "SynthesisResponse",
    "SynthesisResult",
    "SynthesisTask",
    "TaskCache",
    "TargetInvariantObjective",
    "TemplateSet",
    "ValidationError",
    "VerificationOutcome",
    "build_cfg",
    "build_task",
    "check_certificate",
    "check_invariant",
    "compile_plan",
    "compile_problem",
    "default_engine",
    "generate_constraint_pairs",
    "job_from_benchmark",
    "lift_solution",
    "open_store",
    "parse_assertion",
    "parse_polynomial",
    "parse_program",
    "pretty_print",
    "rec_strong_inv_synth",
    "rec_weak_inv_synth",
    "repair_solution",
    "reset_default_engine",
    "strong_inv_synth",
    "verify_solution",
    "weak_inv_synth",
    "__version__",
]

EXPECTED_CERTIFY_ALL = [
    "Certificate",
    "CertificateCheck",
    "CheckReport",
    "DENOMINATOR_LADDER",
    "ExactViolation",
    "LiftResult",
    "PairCertificate",
    "RepairOutcome",
    "RepairRound",
    "SOSWitness",
    "VERIFY_MODES",
    "VerificationOutcome",
    "Violation",
    "certify_assignment",
    "check_certificate",
    "check_invariant",
    "derive_argument_sets",
    "exact_violations",
    "harvest_trace_cuts",
    "is_psd",
    "ldl_decompose",
    "lift_solution",
    "rationalize",
    "repair_solution",
    "solve_linear",
    "verify_solution",
]

EXPECTED_API_ALL = [
    "Engine",
    "EngineClosedError",
    "ErrorInfo",
    "MODES",
    "RequestValidationError",
    "STRONG_MODES",
    "SynthesisHandle",
    "SynthesisRequest",
    "SynthesisResponse",
    "default_engine",
    "invariant_to_dict",
    "objective_from_dict",
    "objective_to_dict",
    "precondition_to_spec",
    "reset_default_engine",
    "response_from_result",
]


EXPECTED_REDUCTION_ALL = [
    "AUTO_DEGREE",
    "EscalationAttempt",
    "EscalationTrace",
    "ReductionPlan",
    "ReductionReport",
    "STAGE_NAMES",
    "StageCache",
    "StageExecution",
    "SynthesisOptions",
    "SynthesisTask",
    "compile_plan",
]


def test_repro_all_matches_snapshot():
    assert sorted(repro.__all__) == sorted(EXPECTED_REPRO_ALL)


def test_repro_api_all_matches_snapshot():
    assert sorted(repro.api.__all__) == sorted(EXPECTED_API_ALL)


def test_repro_reduction_all_matches_snapshot():
    assert sorted(repro.reduction.__all__) == sorted(EXPECTED_REDUCTION_ALL)


def test_repro_certify_all_matches_snapshot():
    assert sorted(repro.certify.__all__) == sorted(EXPECTED_CERTIFY_ALL)


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name
    for name in repro.api.__all__:
        assert getattr(repro.api, name, None) is not None, name
    for name in repro.reduction.__all__:
        assert getattr(repro.reduction, name, None) is not None, name
    for name in repro.certify.__all__:
        assert getattr(repro.certify, name, None) is not None, name


def test_paper_entry_points_route_through_the_engine():
    """The four paper-named functions are wrappers over the default engine."""
    import inspect

    from repro.invariants import synthesis

    for function in (
        synthesis.weak_inv_synth,
        synthesis.strong_inv_synth,
        synthesis.rec_weak_inv_synth,
        synthesis.rec_strong_inv_synth,
    ):
        assert "_run_request" in inspect.getsource(function), function.__name__
    assert "default_engine" in inspect.getsource(synthesis._run_request)
