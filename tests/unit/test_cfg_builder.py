"""Unit tests for repro.cfg.builder and repro.cfg.graph."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.labels import LabelKind
from repro.cfg.transition import TransitionKind
from repro.lang.parser import parse_program
from repro.polynomial.parse import parse_polynomial


def test_running_example_label_numbering_matches_paper(sum_cfg):
    """The sum program of Figure 2 has labels 1..9 with the kinds shown in the paper."""
    function = sum_cfg.function("sum")
    kinds = {label.index: label.kind for label in function.labels}
    assert kinds == {
        1: LabelKind.ASSIGN,
        2: LabelKind.ASSIGN,
        3: LabelKind.BRANCH,
        4: LabelKind.NONDET,
        5: LabelKind.ASSIGN,
        6: LabelKind.ASSIGN,
        7: LabelKind.ASSIGN,
        8: LabelKind.ASSIGN,
        9: LabelKind.END,
    }


def test_running_example_transitions_match_figure_3(sum_cfg):
    function = sum_cfg.function("sum")
    edges = {(t.source.index, t.target.index) for t in function.transitions}
    assert edges == {(1, 2), (2, 3), (3, 4), (3, 8), (4, 5), (4, 6), (5, 7), (6, 7), (7, 3), (8, 9)}


def test_return_updates_return_variable(sum_cfg):
    function = sum_cfg.function("sum")
    return_transition = [t for t in function.transitions if t.source.index == 8][0]
    assert return_transition.kind is TransitionKind.UPDATE
    assert return_transition.update == {"ret_sum": parse_polynomial("s")}
    assert return_transition.target == function.exit


def test_new_variables_added(sum_cfg):
    function = sum_cfg.function("sum")
    assert function.return_variable == "ret_sum"
    assert function.frozen_parameters == {"n": "n_init"}
    assert set(function.variables) == {"n", "n_init", "i", "s", "ret_sum"}


def test_variable_count_excludes_synthetic(sum_cfg):
    assert sum_cfg.variable_count() == 3  # n, i, s


def test_implicit_return_zero_added():
    cfg = build_cfg(parse_program("f(x) { y := x }"))
    function = cfg.function("f")
    # labels: 1 assignment, 2 implicit return, 3 endpoint
    assert [label.kind for label in function.labels] == [
        LabelKind.ASSIGN,
        LabelKind.ASSIGN,
        LabelKind.END,
    ]
    implicit = function.outgoing(function.label_by_index(2))[0]
    assert implicit.update == {"ret_f": parse_polynomial("0")}


def test_while_loop_back_edge():
    cfg = build_cfg(parse_program("f(n) { i := 0; while i <= n do i := i + 1 od; return i }"))
    function = cfg.function("f")
    loop_label = function.label_by_index(2)
    assert loop_label.kind is LabelKind.BRANCH
    back_edges = [t for t in function.transitions if t.target == loop_label]
    assert len(back_edges) == 2  # initial entry and the loop body's back edge


def test_if_produces_guard_and_negated_guard():
    cfg = build_cfg(parse_program("f(x) { if x >= 0 then y := 1 else y := 2 fi; return y }"))
    function = cfg.function("f")
    guards = [t for t in function.transitions if t.kind is TransitionKind.GUARD]
    assert len(guards) == 2
    sources = {t.source.index for t in guards}
    assert sources == {1}


def test_call_transition_payload(recursive_sum_cfg):
    function = recursive_sum_cfg.function("recursive_sum")
    calls = [t for t in function.transitions if t.kind is TransitionKind.CALL]
    assert len(calls) == 1
    call = calls[0].call
    assert call.callee == "recursive_sum"
    assert call.target == "s"
    assert call.arguments == ("m",)


def test_endpoint_has_no_outgoing(sum_cfg):
    function = sum_cfg.function("sum")
    assert function.outgoing(function.exit) == []
    assert function.exit.is_endpoint


def test_incoming(sum_cfg):
    function = sum_cfg.function("sum")
    loop_head = function.label_by_index(3)
    assert {t.source.index for t in function.incoming(loop_head)} == {2, 7}


def test_label_lookup_errors(sum_cfg):
    function = sum_cfg.function("sum")
    with pytest.raises(KeyError):
        function.label_by_index(99)
    from repro.errors import SemanticsError

    with pytest.raises(SemanticsError):
        sum_cfg.function("nope")


def test_program_cfg_aggregates(recursive_sum_cfg):
    assert recursive_sum_cfg.label_count() == len(recursive_sum_cfg.all_labels())
    assert len(recursive_sum_cfg.all_transitions()) >= 9
    assert recursive_sum_cfg.main.name == "recursive_sum"


def test_labels_of_kind(sum_cfg):
    function = sum_cfg.function("sum")
    assert len(function.labels_of_kind(LabelKind.ASSIGN)) == 6
    assert len(function.labels_of_kind(LabelKind.NONDET)) == 1
