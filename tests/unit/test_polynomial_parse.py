"""Unit tests for repro.polynomial.parse."""

from fractions import Fraction

import pytest

from repro.errors import ParseError
from repro.polynomial.monomial import Monomial
from repro.polynomial.parse import parse_polynomial
from repro.polynomial.polynomial import Polynomial


def test_parse_constant():
    assert parse_polynomial("5") == Polynomial.constant(5)
    assert parse_polynomial("0.5") == Polynomial.constant(Fraction(1, 2))


def test_parse_variable():
    assert parse_polynomial("x") == Polynomial.variable("x")
    assert parse_polynomial("ret_sum") == Polynomial.variable("ret_sum")


def test_parse_sum_and_difference():
    p = parse_polynomial("x + 2*y - 3")
    assert p.coefficient(Monomial({"x": 1})) == 1
    assert p.coefficient(Monomial({"y": 1})) == 2
    assert p.constant_term() == -3


def test_parse_powers_both_spellings():
    assert parse_polynomial("x^2") == parse_polynomial("x**2")
    assert parse_polynomial("x^3").degree() == 3


def test_parse_parentheses_and_precedence():
    assert parse_polynomial("(x + 1)*(x - 1)") == parse_polynomial("x^2 - 1")
    assert parse_polynomial("x + 2*y^2") == Polynomial.variable("x") + 2 * Polynomial.variable("y") ** 2


def test_parse_unary_minus():
    assert parse_polynomial("-x + 1") == Polynomial.one() - Polynomial.variable("x")
    assert parse_polynomial("-(x + y)") == -(Polynomial.variable("x") + Polynomial.variable("y"))


def test_parse_division_by_constant():
    assert parse_polynomial("x/2") == Polynomial.variable("x") / 2


def test_parse_division_by_variable_rejected():
    with pytest.raises(ParseError):
        parse_polynomial("1/x")


def test_parse_decimal_coefficients_are_exact():
    p = parse_polynomial("0.5*n^2 + 0.5*n + 1")
    assert p.coefficient(Monomial({"n": 2})) == Fraction(1, 2)


def test_parse_implicit_multiplication():
    assert parse_polynomial("2x") == 2 * Polynomial.variable("x")
    assert parse_polynomial("2(x + 1)") == 2 * Polynomial.variable("x") + 2


def test_parse_errors():
    with pytest.raises(ParseError):
        parse_polynomial("")
    with pytest.raises(ParseError):
        parse_polynomial("x +")
    with pytest.raises(ParseError):
        parse_polynomial("x ^ y")
    with pytest.raises(ParseError):
        parse_polynomial("(x + 1")
    with pytest.raises(ParseError):
        parse_polynomial("x @ y")


def test_roundtrip_through_str():
    p = parse_polynomial("3*x^2*y - 0.25*y + 7")
    assert parse_polynomial(str(p)) == p
