"""Unit tests for repro.cfg.dnf."""

import pytest

from repro.cfg.dnf import AtomicInequality, normalize_comparison, predicate_holds, to_dnf
from repro.lang.ast_nodes import BinaryPredicate, Comparison, NegatedPredicate
from repro.polynomial.parse import parse_polynomial
from repro.polynomial.polynomial import Polynomial


def comparison(text_left, op, text_right):
    return Comparison(parse_polynomial(text_left), op, parse_polynomial(text_right))


def test_normalize_le():
    atom = normalize_comparison(comparison("x", "<=", "n"))
    assert atom.polynomial == parse_polynomial("n - x")
    assert not atom.strict


def test_normalize_lt_is_strict():
    atom = normalize_comparison(comparison("x", "<", "n"))
    assert atom.strict


def test_normalize_negation_flips():
    atom = normalize_comparison(comparison("x", "<=", "n"), negate=True)
    assert atom.polynomial == parse_polynomial("x - n")
    assert atom.strict


def test_atomic_inequality_holds():
    atom = AtomicInequality(parse_polynomial("x - 1"), strict=False)
    assert atom.holds({"x": 1.0})
    assert not atom.holds({"x": 0.5})
    strict = AtomicInequality(parse_polynomial("x - 1"), strict=True)
    assert not strict.holds({"x": 1.0})


def test_atomic_inequality_relaxed_and_negated():
    atom = AtomicInequality(parse_polynomial("x"), strict=True)
    assert not atom.relaxed().strict
    negated = atom.negated()
    assert negated.polynomial == -parse_polynomial("x")
    assert not negated.strict


def test_atomic_inequality_substitute():
    atom = AtomicInequality(parse_polynomial("x - y"), strict=False)
    substituted = atom.substitute({"x": parse_polynomial("y + 1")})
    assert substituted.polynomial == Polynomial.one()


def test_to_dnf_single_comparison():
    clauses = to_dnf(comparison("i", "<=", "n"))
    assert len(clauses) == 1
    assert len(clauses[0]) == 1


def test_to_dnf_conjunction_stays_single_clause():
    predicate = BinaryPredicate("and", comparison("x", ">=", "0"), comparison("y", ">", "1"))
    clauses = to_dnf(predicate)
    assert len(clauses) == 1
    assert len(clauses[0]) == 2


def test_to_dnf_disjunction_splits():
    predicate = BinaryPredicate("or", comparison("x", ">=", "0"), comparison("y", ">", "1"))
    assert len(to_dnf(predicate)) == 2


def test_to_dnf_negation_de_morgan():
    inner = BinaryPredicate("and", comparison("x", ">=", "0"), comparison("y", ">=", "0"))
    clauses = to_dnf(NegatedPredicate(inner))
    # not (a and b) == (not a) or (not b): two clauses of one atom each.
    assert len(clauses) == 2
    assert all(len(clause) == 1 for clause in clauses)
    assert all(atom.strict for clause in clauses for atom in clause)


def test_to_dnf_distribution():
    # (a or b) and c  ->  (a and c) or (b and c)
    predicate = BinaryPredicate(
        "and",
        BinaryPredicate("or", comparison("x", ">", "0"), comparison("y", ">", "0")),
        comparison("z", ">=", "0"),
    )
    clauses = to_dnf(predicate)
    assert len(clauses) == 2
    assert all(len(clause) == 2 for clause in clauses)


def test_to_dnf_deduplicates_atoms():
    predicate = BinaryPredicate("and", comparison("x", ">=", "0"), comparison("x", ">=", "0"))
    clauses = to_dnf(predicate)
    assert len(clauses[0]) == 1


@pytest.mark.parametrize(
    "valuation, expected",
    [({"x": 3.0, "y": 0.0}, True), ({"x": -1.0, "y": 5.0}, True), ({"x": -1.0, "y": 0.0}, False)],
)
def test_predicate_holds_matches_semantics(valuation, expected):
    predicate = BinaryPredicate("or", comparison("x", ">=", "0"), comparison("y", ">", "1"))
    assert predicate_holds(predicate, valuation) is expected
    assert predicate.holds(valuation) is expected
