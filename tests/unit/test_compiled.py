"""Tests of the compiled numeric views in repro.polynomial.compiled."""

import numpy as np
import pytest

from repro.errors import PolynomialError
from repro.polynomial.compiled import (
    CompiledPolynomial,
    coefficient_vector,
    lower_block,
    lower_coefficient_matrix,
    lower_quadratic,
    monomial_index,
)
from repro.polynomial.parse import parse_polynomial


POINTS = [
    {"x": 0.0, "y": 0.0, "z": 0.0},
    {"x": 1.0, "y": -2.0, "z": 3.0},
    {"x": 0.5, "y": 4.0, "z": -1.25},
]


def test_compiled_polynomial_matches_evaluate_float():
    polynomial = parse_polynomial("2*x^2*y - 3*y*z + z^3 - 1/2")
    compiled = CompiledPolynomial.from_polynomial(polynomial, ["x", "y", "z"])
    for valuation in POINTS:
        point = np.array([valuation["x"], valuation["y"], valuation["z"]])
        assert compiled.evaluate(point) == pytest.approx(polynomial.evaluate_float(valuation))
        assert compiled.evaluate_valuation(valuation) == pytest.approx(
            polynomial.evaluate_float(valuation)
        )


def test_compiled_polynomial_batch_evaluation():
    polynomial = parse_polynomial("x*y + 2*x - 7")
    compiled = CompiledPolynomial.from_polynomial(polynomial, ["x", "y"])
    points = np.array([[0.0, 0.0], [1.0, 2.0], [-3.0, 0.5]])
    values = compiled.evaluate_many(points)
    expected = [polynomial.evaluate_float({"x": p[0], "y": p[1]}) for p in points]
    assert values == pytest.approx(expected)


def test_compiled_zero_polynomial():
    compiled = CompiledPolynomial.from_polynomial(parse_polynomial("0"), ["x"])
    assert compiled.evaluate(np.array([5.0])) == 0.0
    assert compiled.evaluate_many(np.zeros((3, 1))) == pytest.approx([0.0, 0.0, 0.0])


def test_compiled_polynomial_rejects_unknown_variable():
    with pytest.raises(PolynomialError):
        CompiledPolynomial.from_polynomial(parse_polynomial("x + y"), ["x"])


def test_compiled_valuation_missing_variable():
    compiled = CompiledPolynomial.from_polynomial(parse_polynomial("x + y"), ["x", "y"])
    with pytest.raises(PolynomialError):
        compiled.evaluate_valuation({"x": 1.0})


def test_lower_block_matches_per_polynomial_evaluation():
    polynomials = [
        parse_polynomial("x^2 - y"),
        parse_polynomial("3"),
        parse_polynomial("0"),
        parse_polynomial("x*y*z - z"),
    ]
    block = lower_block(polynomials, ["x", "y", "z"])
    assert block.row_count == 4
    for valuation in POINTS:
        point = np.array([valuation["x"], valuation["y"], valuation["z"]])
        values = block.evaluate_all(point)
        expected = [p.evaluate_float(valuation) for p in polynomials]
        assert values == pytest.approx(expected)
        assert block.evaluate_assignment(valuation) == pytest.approx(expected)


def test_lower_block_infers_variable_order():
    block = lower_block([parse_polynomial("b + a"), parse_polynomial("c^2")])
    assert block.variables == ("a", "b", "c")


def test_lower_quadratic_reconstructs_values():
    polynomials = [
        parse_polynomial("x^2 + 2*x*y - 3*x + 5"),
        parse_polynomial("y^2 - 1/4"),
        parse_polynomial("7*x"),
    ]
    index = {"x": 0, "y": 1}
    triplets = lower_quadratic(polynomials, index)
    point = np.array([1.5, -2.0])
    values = triplets.constants.copy()
    np.add.at(values, triplets.linear_rows, triplets.linear_values * point[triplets.linear_cols])
    np.add.at(
        values,
        triplets.quad_rows,
        triplets.quad_values * point[triplets.quad_left] * point[triplets.quad_right],
    )
    expected = [p.evaluate_float({"x": 1.5, "y": -2.0}) for p in polynomials]
    assert values == pytest.approx(expected)


def test_lower_quadratic_rejects_cubic_terms():
    with pytest.raises(PolynomialError):
        lower_quadratic([parse_polynomial("x^3")], {"x": 0})


def test_coefficient_matrix_round_trip():
    polynomials = [parse_polynomial("x^2 + 2*y"), parse_polynomial("y - 3")]
    index = monomial_index(polynomials)
    matrix = lower_coefficient_matrix(polynomials, index)
    assert matrix.shape == (len(index), 2)
    for column, polynomial in enumerate(polynomials):
        vector = coefficient_vector(polynomial, index)
        assert matrix[:, column] == pytest.approx(vector)


def test_monomial_index_is_deterministic():
    polynomials = [parse_polynomial("x + y"), parse_polynomial("y + z^2")]
    first = monomial_index(polynomials)
    second = monomial_index(polynomials)
    assert first == second
    assert sorted(first.values()) == list(range(len(first)))
