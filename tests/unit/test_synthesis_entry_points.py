"""Regression tests for the paper-named entry points as Engine wrappers.

Covers the two historical sharp edges: the in-place mutation of a
caller-supplied ``task.statistics`` (which polluted shared tasks when one
reduction was reused across several solvers), and the missing ``task=``
passthrough on the recursive variants.
"""

from repro.invariants.synthesis import (
    SynthesisOptions,
    build_task,
    rec_strong_inv_synth,
    rec_weak_inv_synth,
    strong_inv_synth,
    weak_inv_synth,
)
from repro.solvers.base import SolverOptions
from repro.solvers.qclp import GaussNewtonSolver, PenaltyQCLPSolver
from repro.solvers.strong import RepresentativeEnumerator
from repro.suite.registry import get_benchmark

BENCH = get_benchmark("freire1")  # cheap to solve, keeps this module fast
QUICK = SolverOptions(restarts=1, max_iterations=60)


def quick_task():
    return build_task(BENCH.source, BENCH.precondition, BENCH.objective(), BENCH.options(upsilon=1))


def test_weak_inv_synth_does_not_mutate_shared_task_statistics():
    task = quick_task()
    before = dict(task.statistics)

    first = weak_inv_synth(BENCH.source, task=task, solver=PenaltyQCLPSolver(QUICK))
    second = weak_inv_synth(BENCH.source, task=task, solver=GaussNewtonSolver(QUICK))

    # The shared task's statistics are untouched: no solver timing leaks in.
    assert task.statistics == before
    assert "time_solver" not in task.statistics
    # Each result carries its own solve timing instead.
    assert first.statistics["time_solver"] > 0
    assert second.statistics["time_solver"] > 0
    assert first.statistics["time_solver"] != second.statistics["time_solver"]


def test_strong_inv_synth_does_not_mutate_shared_task_statistics():
    task = build_task(BENCH.source, BENCH.precondition, None, BENCH.options(upsilon=1, with_witness=False))
    before = dict(task.statistics)
    enumerator = RepresentativeEnumerator(attempts=2, options=QUICK)
    result = strong_inv_synth(BENCH.source, task=task, enumerator=enumerator)
    assert task.statistics == before
    assert "enumeration_attempts" in result.statistics


def test_rec_weak_inv_synth_accepts_prebuilt_task():
    task = quick_task()
    result = rec_weak_inv_synth(BENCH.source, task=task, solver=PenaltyQCLPSolver(QUICK))
    # The reduction was reused, not rebuilt: the result views the same system.
    assert result.system is task.system
    reference = weak_inv_synth(BENCH.source, task=task, solver=PenaltyQCLPSolver(QUICK))
    assert result.assignment == reference.assignment


def test_rec_strong_inv_synth_accepts_prebuilt_task():
    task = build_task(BENCH.source, BENCH.precondition, None, BENCH.options(upsilon=1, with_witness=False))
    enumerator = RepresentativeEnumerator(attempts=2, options=QUICK)
    result = rec_strong_inv_synth(BENCH.source, task=task, enumerator=enumerator)
    assert result.system is task.system
    assert "representatives" in result.solver_status


def test_all_four_entry_points_share_the_default_engine_cache():
    from repro.api.engine import default_engine

    cache_before = default_engine().cache.stats()["misses"]
    options = SynthesisOptions(upsilon=1)
    weak_inv_synth(BENCH.source, BENCH.precondition, BENCH.objective(), options, solver=PenaltyQCLPSolver(QUICK))
    weak_inv_synth(BENCH.source, BENCH.precondition, BENCH.objective(), options, solver=PenaltyQCLPSolver(QUICK))
    cache_after = default_engine().cache.stats()["misses"]
    # The second call reused the first call's Step 1-3 reduction.
    assert cache_after - cache_before <= 1
