"""Unit tests for repro.solvers.sdp (SOS certificate search) and farkas baseline."""

import pytest

from repro.invariants.constraints import ConstraintPair
from repro.polynomial.parse import parse_polynomial
from repro.solvers.farkas import can_express_target, farkas_translate, linear_baseline_system
from repro.solvers.sdp import check_putinar_certificate, solve_sos_feasibility
from repro.spec.preconditions import Precondition


def test_sos_feasibility_globally_positive_polynomial():
    # x^2 + 1 > 0 needs no assumptions at all.
    result = solve_sos_feasibility(
        conclusion=parse_polynomial("x^2 + 1"),
        assumptions=[],
        variables=["x"],
        upsilon=2,
        epsilon=0.5,
    )
    assert result.feasible


def test_sos_feasibility_uses_assumptions():
    # x >= 1 ==> x^2 > 0 has the certificate x^2 = eps + h0 + h1*(x - 1).
    result = solve_sos_feasibility(
        conclusion=parse_polynomial("x^2"),
        assumptions=[parse_polynomial("x - 1")],
        variables=["x"],
        upsilon=2,
        epsilon=1e-3,
    )
    assert result.feasible
    assert len(result.gram_matrices) == 2


def test_sos_feasibility_detects_false_implication():
    # x >= 0 does NOT imply x - 1 > 0.
    result = solve_sos_feasibility(
        conclusion=parse_polynomial("x - 1"),
        assumptions=[parse_polynomial("x")],
        variables=["x"],
        upsilon=2,
        epsilon=1e-3,
        max_iterations=800,
    )
    assert not result.feasible


def test_check_putinar_certificate_wrapper():
    pair = ConstraintPair(
        name="pair",
        assumptions=(parse_polynomial("x"), parse_polynomial("1 - x")),
        conclusion=parse_polynomial("x*x - x + 1"),
        program_variables=("x",),
    )
    result = check_putinar_certificate(pair, upsilon=2, epsilon=1e-3)
    assert result.feasible


def test_check_putinar_certificate_rejects_symbolic_pair():
    pair = ConstraintPair(
        name="pair",
        assumptions=(parse_polynomial("x"),),
        conclusion=parse_polynomial("$s_f_1_0_0 * x"),
        program_variables=("x",),
    )
    with pytest.raises(ValueError):
        check_putinar_certificate(pair)


def test_sos_feasibility_no_variables():
    result = solve_sos_feasibility(
        conclusion=parse_polynomial("2"),
        assumptions=[],
        variables=[],
        upsilon=2,
        epsilon=1.0,
    )
    assert result.feasible


# -- Farkas / linear baseline -----------------------------------------------------------


def test_farkas_translate_is_single_factor_handelman():
    pair = ConstraintPair(
        name="pair",
        assumptions=(parse_polynomial("x"),),
        conclusion=parse_polynomial("$s_f_1_0_0 * x + 1"),
        program_variables=("x",),
    )
    system = farkas_translate([pair])
    assert system.size > 0
    for constraint in system:
        assert constraint.polynomial.degree() <= 2


def test_linear_baseline_system_builds_degree_one_templates(sum_cfg, sum_precondition):
    templates, system = linear_baseline_system(sum_cfg, sum_precondition)
    assert templates.degree == 1
    assert system.size > 0


def test_can_express_target_detects_quadratic_targets(sum_cfg, sum_precondition):
    templates, _ = linear_baseline_system(sum_cfg, sum_precondition)
    quadratic_target = parse_polynomial("0.5*n_init^2 + 0.5*n_init + 1 - ret_sum")
    linear_target = parse_polynomial("n_init - ret_sum + 1")
    assert not can_express_target(templates, quadratic_target, "sum", 9)
    assert can_express_target(templates, linear_target, "sum", 9)
