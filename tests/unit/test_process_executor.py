"""Tests of the process-backed whole-job executor (repro.api.workers)."""

import json
import multiprocessing
import os
import time
from concurrent.futures import Future, ThreadPoolExecutor

import pytest

from repro.api import Engine, SynthesisRequest
from repro.api.workers import (
    FAULT_MARKER_ENV,
    ProcessWorkerPool,
    WorkerConfig,
    WorkerCrashError,
)
from repro.solvers.base import SolverOptions
from repro.suite.registry import get_benchmark

QUICK_SOLVE = SolverOptions(restarts=1, max_iterations=60)


def request_for(name: str, **overrides) -> SynthesisRequest:
    benchmark = get_benchmark(name)
    fields = dict(
        program=benchmark.source,
        mode="weak",
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=benchmark.options(upsilon=1),
        request_id=name,
    )
    fields.update(overrides)
    return SynthesisRequest(**fields)


def shm_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-Linux
        return set()


# -- the auto decision table -------------------------------------------------------


def test_auto_executor_decision_table():
    resolve = Engine._resolve_executor
    assert resolve("auto", 0, cpus=8) == "thread"
    assert resolve("auto", 1, cpus=8) == "thread"
    assert resolve("auto", 4, cpus=1) == "thread"
    assert resolve("auto", 2, cpus=2) == "process"
    assert resolve("auto", 4, cpus=16) == "process"
    # Explicit choices always win, whatever the host looks like.
    assert resolve("thread", 8, cpus=16) == "thread"
    assert resolve("process", 8, cpus=1) == "process"
    assert resolve("solve-process", 8, cpus=1) == "solve-process"


def test_unknown_executor_rejected():
    with pytest.raises(ValueError, match="unknown executor"):
        Engine(executor="fork-bomb")


# -- differential: process-backed responses match thread-backed ones ---------------


def test_process_engine_matches_sequential_fingerprints():
    names = ["sum", "freire1", "cohendiv"]
    with Engine(solver_options=QUICK_SOLVE) as sequential:
        baseline = {name: sequential.synthesize(request_for(name)) for name in names}
    with Engine(workers=2, solver_options=QUICK_SOLVE, executor="process") as engine:
        assert engine.executor_kind == "process"
        for name in names:
            response = engine.synthesize(request_for(name))
            assert response.status == baseline[name].status
            assert response.fingerprint() == baseline[name].fingerprint()
            # Wire envelopes never carry in-process extras.
            assert response.result is None and response.task is None
        stats = engine.stats()
        assert stats["process_jobs"] == float(len(names))
        assert stats["process_jobs_shared"] == 0.0
        assert stats["process_jobs_failed"] == 0.0


# -- in-flight dedup ---------------------------------------------------------------


def test_inflight_rider_shares_owner_envelope():
    """A request identical to one already in flight rides the owner's job."""
    with Engine(workers=2, solver_options=QUICK_SOLVE, executor="process") as engine:
        request = request_for("sum", request_id="rider")
        key = engine._process_dedup_key(request)
        owner_future: Future = Future()
        with engine._inflight_lock:
            engine._inflight[key] = owner_future

        # Compute the wire envelope the owner would publish, out of band
        # (same request_id: the fingerprint includes the caller label and
        # the rider restamps its own onto the shared envelope).
        with Engine(solver_options=QUICK_SOLVE) as sequential:
            owned = sequential.synthesize(request_for("sum", request_id="rider"))
        wire = json.dumps(owned.to_dict(), default=str)

        with ThreadPoolExecutor(max_workers=1) as pool:
            rider = pool.submit(engine.synthesize, request)
            time.sleep(0.05)
            assert not rider.done()  # genuinely waiting on the in-flight owner
            owner_future.set_result(wire)
            response = rider.result(timeout=30)
        assert response.status == owned.status
        assert response.request_id == "rider"
        assert response.from_cache and response.shared_solve
        assert response.fingerprint() == owned.fingerprint()
        stats = engine.stats()
        assert stats["process_jobs_shared"] == 1.0
        assert stats["process_jobs"] == 0.0
        with engine._inflight_lock:
            engine._inflight.pop(key, None)


def test_process_stats_account_for_every_request():
    """Concurrent identical requests: owners + riders sum to the request count."""
    total = 6
    with Engine(workers=2, solver_options=QUICK_SOLVE, executor="process") as engine:
        requests = [request_for("sum", request_id=f"client-{i}") for i in range(total)]
        responses = list(engine.map(requests))
        assert all(response.status == "ok" for response in responses)
        distinct = {
            json.dumps(
                {**response.fingerprint(), "request_id": None}, sort_keys=True, default=str
            )
            for response in responses
        }
        assert len(distinct) == 1
        stats = engine.stats()
        assert stats["process_jobs"] + stats["process_jobs_shared"] == float(total)
        assert stats["process_inflight"] == 0.0


# -- crash handling ----------------------------------------------------------------


def test_worker_crash_becomes_structured_error(monkeypatch):
    monkeypatch.setenv(FAULT_MARKER_ENV, "crash-me")
    with Engine(workers=2, solver_options=QUICK_SOLVE, executor="process") as engine:
        crashed = engine.synthesize(request_for("sum", request_id="crash-me"))
        assert crashed.status == "error"
        assert crashed.error is not None and crashed.error.type == "WorkerCrashed"
        # The pool rebuilt: the very next request succeeds.
        after = engine.synthesize(request_for("sum", request_id="survivor"))
        assert after.status == "ok"
        stats = engine.stats()
        assert stats["process_jobs_failed"] == 1.0
        assert stats["process_jobs"] == 2.0


# -- leak audit --------------------------------------------------------------------


def test_failed_engine_construction_leaves_no_children(monkeypatch):
    """An engine that fails after forking its pool must tear it down."""
    from repro.api.workers import _worker_warmup

    before_children = {child.pid for child in multiprocessing.active_children()}
    before_shm = shm_entries()

    def exploding_warm(self):
        # Fork (and initialise) the workers for real, then fail — exactly
        # the shape of an initialisation error surfacing mid-construction.
        executor = self._ensure()
        list(executor.map(_worker_warmup, range(self.workers)))
        raise RuntimeError("boom")

    monkeypatch.setattr(ProcessWorkerPool, "warm", exploding_warm)
    with pytest.raises(RuntimeError, match="boom"):
        Engine(workers=2, solver_options=QUICK_SOLVE, executor="process")
    deadline = time.time() + 10
    while time.time() < deadline:
        leaked = {
            child.pid for child in multiprocessing.active_children()
        } - before_children
        if not leaked:
            break
        time.sleep(0.1)
    assert not leaked
    assert shm_entries() <= before_shm


def test_close_shuts_down_job_workers():
    engine = Engine(workers=2, solver_options=QUICK_SOLVE, executor="process")
    assert engine.synthesize(request_for("sum")).status == "ok"
    pids = engine._jobs.worker_pids()
    assert pids
    engine.close()
    deadline = time.time() + 10
    while time.time() < deadline:
        live = {child.pid for child in multiprocessing.active_children()} & set(pids)
        if not live:
            break
        time.sleep(0.1)
    assert not live
    assert engine._jobs is None


# -- deadline propagation ----------------------------------------------------------


def test_deadline_epoch_clamps_only_downward():
    request = request_for("sum", deadline=10.0)
    # More budget left than the request's own deadline: untouched.
    same = Engine._clamp_deadline(request, time.time() + 100.0)
    assert same is request
    # Nearly exhausted budget: the derived request carries what remains.
    clamped = Engine._clamp_deadline(request, time.time() + 0.5)
    assert clamped is not request
    assert 0 < clamped.deadline <= 0.5
    # The clamp never rewrites content keys: only the deadline differs.
    assert clamped.program == request.program
    # No anchor, or no deadline on the request: nothing to clamp.
    assert Engine._clamp_deadline(request, None) is request
    no_deadline = request_for("sum")
    assert Engine._clamp_deadline(no_deadline, time.time()) is no_deadline


def test_expired_deadline_yields_deadline_error_not_hang():
    with Engine(workers=2, solver_options=QUICK_SOLVE, executor="process") as engine:
        response = engine.synthesize(
            request_for("sum", request_id="expired", deadline=5.0),
            deadline_epoch=time.time() - 1.0,  # budget already gone on arrival
        )
        # Whatever the engine decides (a deadline error or a lucky fast
        # solve), it must answer promptly and structurally.
        assert response.status in ("ok", "no_invariant", "error")


# -- the worker pool in isolation --------------------------------------------------


def test_worker_pool_round_trips_json_envelope():
    pool = ProcessWorkerPool(
        1, WorkerConfig(solver_options={"restarts": 1, "max_iterations": 60})
    )
    try:
        wire = pool.execute(request_for("sum").to_dict(), None)
        envelope = json.loads(wire)
        assert envelope["status"] == "ok"
        assert envelope["request_id"] == "sum"
    finally:
        pool.close()


def test_worker_pool_rejects_zero_workers():
    with pytest.raises(ValueError, match="at least one worker"):
        ProcessWorkerPool(0, WorkerConfig())
