"""Tests of the batch synthesis pipeline (repro.pipeline)."""

import pytest

from repro.invariants.synthesis import SynthesisOptions, weak_inv_synth
from repro.pipeline import SynthesisJob, SynthesisPipeline, TaskCache, job_from_benchmark
from repro.solvers.base import SolverOptions
from repro.solvers.qclp import PenaltyQCLPSolver
from repro.suite.registry import get_benchmark

QUICK = SynthesisOptions(upsilon=1)


def small_solver() -> PenaltyQCLPSolver:
    return PenaltyQCLPSolver(SolverOptions(restarts=1, max_iterations=60))


def sum_job() -> SynthesisJob:
    return job_from_benchmark(get_benchmark("sum"), quick=True)


def test_job_from_benchmark_quick_preset_lowers_upsilon():
    job = job_from_benchmark(get_benchmark("sum"), quick=True)
    assert job.options.upsilon == 1
    full = job_from_benchmark(get_benchmark("sum"))
    assert full.options.upsilon == get_benchmark("sum").upsilon


def test_reduction_key_equality_and_dedup():
    assert sum_job().reduction_key() == sum_job().reduction_key()
    other = job_from_benchmark(get_benchmark("freire1"), quick=True)
    assert sum_job().reduction_key() != other.reduction_key()


def test_task_cache_builds_once():
    cache = TaskCache()
    task_a, cached_a = cache.get_or_build(sum_job())
    task_b, cached_b = cache.get_or_build(sum_job())
    assert not cached_a and cached_b
    assert task_a is task_b
    stats = cache.stats()
    assert stats["hits"] == 1.0 and stats["misses"] == 1.0 and stats["entries"] == 1.0
    cache.clear()
    assert len(cache) == 0


def test_reduce_only_run_yields_tasks_without_results():
    pipeline = SynthesisPipeline(solver=small_solver())
    outcomes = pipeline.run([sum_job()], solve=False)
    assert len(outcomes) == 1
    outcome = outcomes[0]
    assert outcome.ok and outcome.result is None
    assert outcome.task is not None and outcome.task.system.size > 0


def test_sequential_pipeline_matches_weak_inv_synth():
    benchmark = get_benchmark("sum")
    pipeline = SynthesisPipeline(solver=small_solver())
    outcome = pipeline.run([job_from_benchmark(benchmark, quick=True)])[0]
    reference = weak_inv_synth(
        benchmark.source,
        benchmark.precondition,
        benchmark.objective(),
        benchmark.options(upsilon=1),
        solver=small_solver(),
    )
    assert outcome.ok
    assert outcome.result.solver_status == reference.solver_status
    assert outcome.result.assignment == reference.assignment
    if reference.invariant is not None:
        assert outcome.result.invariant.assertions == reference.invariant.assertions


def test_duplicate_jobs_share_reduction_and_solve():
    pipeline = SynthesisPipeline(solver=small_solver())
    job = sum_job()
    outcomes = pipeline.run([job, job])
    assert not outcomes[0].from_cache and outcomes[1].from_cache
    assert not outcomes[0].shared_solve and outcomes[1].shared_solve
    assert outcomes[0].result.assignment == outcomes[1].result.assignment
    assert pipeline.cache.stats()["misses"] == 1.0


def test_bad_job_does_not_poison_the_batch():
    broken = SynthesisJob(name="broken", source="this is not a program", options=QUICK)
    pipeline = SynthesisPipeline(solver=small_solver())
    outcomes = pipeline.run([broken, sum_job()])
    assert not outcomes[0].ok and outcomes[0].result is None
    assert "Traceback" in outcomes[0].error
    assert outcomes[1].ok and outcomes[1].result is not None


def test_pipeline_rejects_negative_workers():
    with pytest.raises(ValueError):
        SynthesisPipeline(workers=-1)


def test_pipeline_context_manager_closes_engine_pools():
    with SynthesisPipeline(solver=small_solver(), workers=2) as pipeline:
        outcomes = pipeline.run([sum_job()])
        assert outcomes[0].ok
    assert pipeline.engine.closed


def test_pipeline_releases_pools_after_each_run_but_stays_usable():
    pipeline = SynthesisPipeline(solver=small_solver(), workers=2)
    first = pipeline.run([sum_job()])
    # The batch scoped its worker pools: nothing is left running afterwards.
    assert pipeline.engine._threads is None and pipeline.engine._processes is None
    # The pipeline (and its task cache) remain usable for the next batch.
    second = pipeline.run([sum_job()])
    assert first[0].ok and second[0].ok
    assert second[0].from_cache
    pipeline.close()


def test_process_pool_matches_sequential():
    jobs = [sum_job(), job_from_benchmark(get_benchmark("freire1"), quick=True)]
    sequential = SynthesisPipeline(solver=small_solver(), workers=0).run(jobs)
    pooled = SynthesisPipeline(solver=small_solver(), workers=2).run(jobs)
    for left, right in zip(sequential, pooled):
        assert left.ok and right.ok
        assert left.result.solver_status == right.result.solver_status
        assert left.result.assignment == right.result.assignment


def test_stream_yields_in_submission_order():
    jobs = [job_from_benchmark(get_benchmark(name), quick=True) for name in ("sum", "freire1")]
    pipeline = SynthesisPipeline(solver=small_solver())
    names = [outcome.job.name for outcome in pipeline.stream(jobs)]
    assert names == ["sum", "freire1"]


# -- strategy threading -----------------------------------------------------------------


def test_jobs_differing_only_in_strategy_share_reduction_not_solve():
    qclp = job_from_benchmark(get_benchmark("sum"), quick=True, strategy="qclp")
    gauss = job_from_benchmark(get_benchmark("sum"), quick=True, strategy="gauss-newton")
    assert qclp.reduction_key() == gauss.reduction_key()
    assert qclp.solve_key() != gauss.solve_key()
    pipeline = SynthesisPipeline(solver_options=SolverOptions(restarts=1, max_iterations=60))
    outcomes = pipeline.run([qclp, gauss])
    assert pipeline.cache.stats()["misses"] == 1.0  # one shared reduction
    assert outcomes[1].from_cache and not outcomes[1].shared_solve


def test_pipeline_resolves_portfolio_solver_from_options():
    job = job_from_benchmark(get_benchmark("freire1"), quick=True, strategy="portfolio")
    pipeline = SynthesisPipeline(solver_options=SolverOptions(restarts=1, max_iterations=80))
    outcome = pipeline.run([job])[0]
    assert outcome.ok
    result = outcome.result
    assert result.strategy is not None
    assert any(key.startswith("portfolio_") for key in result.statistics)


def test_options_reject_unknown_strategy():
    with pytest.raises(Exception):
        SynthesisOptions(strategy="simplex")
    with pytest.raises(Exception):
        SynthesisOptions(strategy="portfolio", portfolio=("nope",))
