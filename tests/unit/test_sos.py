"""Unit tests for repro.polynomial.sos."""

import numpy as np
import pytest

from repro.errors import PolynomialError
from repro.polynomial.monomial import Monomial
from repro.polynomial.parse import parse_polynomial
from repro.polynomial.sos import (
    evaluate_encoding,
    gram_matrix_encoding,
    gram_polynomial,
    is_numerically_psd,
    project_to_psd,
    sos_basis,
    sos_from_gram,
)


def test_sos_basis_half_degree():
    assert len(sos_basis(["x", "y"], 2)) == 3  # 1, x, y
    assert len(sos_basis(["x", "y"], 4)) == 6  # up to degree 2
    assert sos_basis(["x"], 0) == [Monomial.one()]


def test_sos_basis_negative_degree_rejected():
    with pytest.raises(PolynomialError):
        sos_basis(["x"], -1)


def test_gram_encoding_dimensions():
    encoding = gram_matrix_encoding(["x", "y"], 2, prefix="$l_test")
    assert encoding.dimension == 3
    assert len(encoding.all_l_names()) == 6  # lower triangle of a 3x3 matrix
    assert len(encoding.diagonal_names) == 3


def test_gram_encoding_polynomial_is_quadratic_in_l():
    encoding = gram_matrix_encoding(["x"], 2, prefix="$l_q")
    for monomial in encoding.polynomial.terms:
        l_degree = sum(exp for var, exp in monomial if var.startswith("$l_q"))
        assert l_degree == 2


def test_gram_encoding_matches_numeric_expansion():
    encoding = gram_matrix_encoding(["x"], 2, prefix="$l_n")
    values = {name: 0.0 for name in encoding.all_l_names()}
    # L = [[1, 0], [2, 3]]  ->  Q = L L^T = [[1, 2], [2, 13]]
    values[encoding.l_variable_names[0][0]] = 1.0
    values[encoding.l_variable_names[1][0]] = 2.0
    values[encoding.l_variable_names[1][1]] = 3.0
    gram = evaluate_encoding(encoding, values)
    assert np.allclose(gram, np.array([[1.0, 2.0], [2.0, 13.0]]))
    # The symbolic expansion evaluated at those l-values equals y^T Q y.
    substituted = encoding.polynomial.substitute(
        {name: value for name, value in values.items()}
    )
    expected = gram_polynomial(encoding.basis, gram)
    for x_value in (-2.0, 0.5, 3.0):
        assert substituted.evaluate_float({"x": x_value}) == pytest.approx(
            expected.evaluate_float({"x": x_value}), rel=1e-6
        )


def test_is_numerically_psd():
    assert is_numerically_psd(np.array([[2.0, 0.0], [0.0, 1.0]]))
    assert not is_numerically_psd(np.array([[1.0, 0.0], [0.0, -1.0]]))
    assert is_numerically_psd(np.zeros((0, 0)))


def test_project_to_psd_clips_negative_eigenvalues():
    matrix = np.array([[1.0, 0.0], [0.0, -2.0]])
    projected = project_to_psd(matrix)
    assert is_numerically_psd(projected)
    assert projected[0, 0] == pytest.approx(1.0)
    assert projected[1, 1] == pytest.approx(0.0)


def test_sos_from_gram_reconstructs_polynomial():
    basis = sos_basis(["x"], 2)  # [1, x]
    gram = np.array([[1.0, 1.0], [1.0, 2.0]])  # (1 + x)^2 + x^2
    squares = sos_from_gram(basis, gram)
    total = sum((square * square for square in squares), start=parse_polynomial("0"))
    expected = gram_polynomial(basis, gram)
    for x_value in (-1.0, 0.0, 0.7, 2.0):
        assert total.evaluate_float({"x": x_value}) == pytest.approx(
            expected.evaluate_float({"x": x_value}), rel=1e-6, abs=1e-9
        )


def test_sos_from_gram_rejects_indefinite():
    basis = sos_basis(["x"], 2)
    with pytest.raises(PolynomialError):
        sos_from_gram(basis, np.array([[0.0, 1.0], [1.0, 0.0]]))


def test_gram_polynomial_shape_mismatch():
    with pytest.raises(PolynomialError):
        gram_polynomial(sos_basis(["x"], 2), np.eye(3))
