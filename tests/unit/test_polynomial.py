"""Unit tests for repro.polynomial.polynomial."""

from fractions import Fraction

import pytest

from repro.errors import PolynomialError
from repro.polynomial.monomial import Monomial
from repro.polynomial.polynomial import Polynomial


def x():
    return Polynomial.variable("x")


def y():
    return Polynomial.variable("y")


def test_zero_and_one():
    assert Polynomial.zero().is_zero()
    assert Polynomial.one().is_constant()
    assert Polynomial.one().constant_value() == 1


def test_constant_construction():
    assert Polynomial.constant(Fraction(3, 2)).constant_value() == Fraction(3, 2)
    assert Polynomial.constant(0).is_zero()


def test_addition_and_subtraction():
    p = x() + y()
    q = p - y()
    assert q == x()
    assert (p - p).is_zero()


def test_scalar_coercion_in_arithmetic():
    assert x() + 1 == x() + Polynomial.one()
    assert 2 * x() == x() + x()
    assert 1 - x() == Polynomial.one() - x()


def test_multiplication_expands():
    p = (x() + y()) * (x() - y())
    assert p == x() * x() - y() * y()


def test_power():
    p = (x() + 1) ** 3
    assert p.coefficient(Monomial({"x": 2})) == 3
    assert p.coefficient(Monomial.one()) == 1
    assert (x() ** 0) == Polynomial.one()


def test_power_negative_rejected():
    with pytest.raises(PolynomialError):
        x() ** -2


def test_division_by_constant():
    assert (2 * x()) / 2 == x()
    with pytest.raises(PolynomialError):
        x() / 0


def test_degree():
    assert Polynomial.zero().degree() == -1
    assert Polynomial.one().degree() == 0
    assert (x() * x() * y() + x()).degree() == 3
    assert (x() * x() + y()).degree_in("x") == 2


def test_coefficient_lookup():
    p = 3 * x() * y() + 2
    assert p.coefficient(Monomial({"x": 1, "y": 1})) == 3
    assert p.coefficient(Monomial({"x": 2})) == 0
    assert p.constant_term() == 2


def test_variables():
    assert (x() * y() + 1).variables() == frozenset({"x", "y"})
    assert Polynomial.constant(5).variables() == frozenset()


def test_constant_value_of_non_constant_raises():
    with pytest.raises(PolynomialError):
        (x() + 1).constant_value()


def test_evaluate_exact():
    p = x() * x() + 2 * y() - 1
    assert p.evaluate({"x": Fraction(1, 2), "y": 3}) == Fraction(1, 4) + 6 - 1


def test_evaluate_float():
    p = x() * y() + 1
    assert p.evaluate_float({"x": 2.0, "y": 3.0}) == pytest.approx(7.0)


def test_evaluate_missing_variable_raises():
    with pytest.raises(PolynomialError):
        (x() + y()).evaluate({"x": 1})


def test_substitute_single():
    p = x() * x() + y()
    substituted = p.substitute({"x": y() + 1})
    assert substituted == (y() + 1) * (y() + 1) + y()


def test_substitute_is_simultaneous():
    p = x() + y()
    swapped = p.substitute({"x": y(), "y": x()})
    assert swapped == p  # symmetric, but checks no sequential capture
    p2 = x() - y()
    assert p2.substitute({"x": y(), "y": x()}) == y() - x()


def test_substitute_empty_mapping_is_identity():
    p = x() * y() + 3
    assert p.substitute({}) is p


def test_rename():
    p = x() * x() + x() * y()
    renamed = p.rename({"x": "z"})
    assert renamed == Polynomial.variable("z") ** 2 + Polynomial.variable("z") * y()


def test_collect_reconstructs():
    p = 3 * x() * x() * y() + 2 * x() + y() * y() + 5
    grouped = p.collect(["x"])
    rebuilt = Polynomial.zero()
    for monomial, coefficient in grouped.items():
        rebuilt = rebuilt + Polynomial.from_monomial(monomial) * coefficient
    assert rebuilt == p


def test_collect_groups_by_chosen_variables():
    p = x() * y() + x()
    grouped = p.collect(["x"])
    assert grouped[Monomial({"x": 1})] == y() + 1


def test_partial_derivative():
    p = x() ** 3 + 2 * x() * y() + 5
    assert p.partial_derivative("x") == 3 * x() ** 2 + 2 * y()
    assert p.partial_derivative("z").is_zero()


def test_restrict_to():
    p = x() * y() + x() + y()
    assert p.restrict_to(["x"]) == x()


def test_leading_term():
    p = x() * x() + 3 * y()
    monomial, coefficient = p.leading_term()
    assert monomial == Monomial({"x": 2})
    assert coefficient == 1
    with pytest.raises(PolynomialError):
        Polynomial.zero().leading_term()


def test_equality_with_scalars():
    assert Polynomial.constant(4) == 4
    assert Polynomial.zero() == 0
    assert x() != 0


def test_str_rendering():
    assert str(Polynomial.zero()) == "0"
    assert str(x() - y()) in ("x - y", "-y + x")
    assert "1/2" in str(Polynomial.constant(Fraction(1, 2)))


def test_float_coefficients_become_exact_fractions():
    p = Polynomial.constant(0.5) * x()
    assert p.coefficient(Monomial({"x": 1})) == Fraction(1, 2)


def test_scale():
    assert (x() + 1).scale(3) == 3 * x() + 3


def test_len_counts_terms():
    assert len(Polynomial.zero()) == 0
    assert len(x() * y() + x() + 1) == 3


def test_boolean_coefficients_are_rejected():
    # Regression: bool is a subclass of both int and numbers.Rational, so it
    # must be rejected *before* any numeric branch coerces it to 0/1.
    for flag in (True, False):
        with pytest.raises(PolynomialError):
            Polynomial({Monomial.one(): flag})
        with pytest.raises(PolynomialError):
            Polynomial.constant(flag)
        with pytest.raises(PolynomialError):
            x().scale(flag)
        with pytest.raises(PolynomialError):
            x() / flag
    with pytest.raises(PolynomialError):
        (x() + 1).evaluate({"x": True})


def test_pickle_round_trip_preserves_interning():
    import pickle

    p = x() * y() + Fraction(1, 3) * x() + 7
    restored = pickle.loads(pickle.dumps(p))
    assert restored == p
    monomial = Monomial({"x": 2, "y": 1})
    restored_monomial = pickle.loads(pickle.dumps(monomial))
    assert restored_monomial is monomial
