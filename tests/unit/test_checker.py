"""Unit tests for repro.invariants.checker and result objects."""

import pytest

from repro.cfg.labels import Label, LabelKind
from repro.invariants.checker import check_invariant
from repro.invariants.result import Invariant, SynthesisResult
from repro.invariants.quadratic_system import QuadraticSystem
from repro.invariants.template import TemplateSet
from repro.spec.assertions import ConjunctiveAssertion, parse_assertion
from repro.spec.preconditions import Precondition


def make_invariant(cfg, per_label, postconditions=None):
    assertions = {}
    function = cfg.function(cfg.program.main)
    for label in function.labels:
        assertions[label] = per_label.get(label.index, ConjunctiveAssertion.true())
    return Invariant(assertions=assertions, postconditions=postconditions or {})


def test_correct_invariant_passes_simulation(sum_cfg, sum_precondition):
    """The paper's target bound at label 9 plus trivial assertions elsewhere is a real invariant."""
    invariant = make_invariant(
        sum_cfg,
        {9: parse_assertion("0.5*n_init^2 + 0.5*n_init + 1 - ret_sum > 0")},
    )
    report = check_invariant(
        sum_cfg,
        sum_precondition,
        invariant,
        argument_sets=[{"n": n} for n in range(1, 12)],
        pair_samples=0,
    )
    assert report.passed
    assert report.simulation_runs == 11
    assert report.simulation_elements_checked > 20


def test_wrong_invariant_caught_by_simulation(sum_cfg, sum_precondition):
    invariant = make_invariant(sum_cfg, {9: parse_assertion("ret_sum - 1000 > 0")})
    report = check_invariant(
        sum_cfg,
        sum_precondition,
        invariant,
        argument_sets=[{"n": 5}],
        pair_samples=0,
    )
    assert not report.passed
    assert any(violation.kind == "invariant" for violation in report.violations)


def test_non_inductive_invariant_caught_by_pair_sampling(sum_cfg, sum_precondition):
    # "i <= 3" holds on short runs but is not inductive: pair sampling finds a counterexample
    # to consecution even without running the program.
    invariant = make_invariant(sum_cfg, {7: parse_assertion("4 - i > 0")})
    report = check_invariant(
        sum_cfg,
        sum_precondition,
        invariant,
        argument_sets=[],
        pair_samples=120,
        sample_range=10.0,
        seed=3,
    )
    assert not report.passed


def test_trivial_invariant_passes_everything(sum_cfg, sum_precondition):
    invariant = make_invariant(sum_cfg, {})
    report = check_invariant(
        sum_cfg,
        sum_precondition,
        invariant,
        argument_sets=[{"n": 3}],
        pair_samples=20,
    )
    assert report.passed
    assert "PASS" in report.summary()


def test_certificate_check_on_tiny_program():
    from repro.cfg.builder import build_cfg
    from repro.lang.parser import parse_program

    cfg = build_cfg(parse_program("f(x) { y := x + 1; return y }"))
    precondition = Precondition.from_spec(cfg, {"f": {1: "x >= 0"}})
    function = cfg.function("f")
    assertions = {label: ConjunctiveAssertion.true() for label in function.labels}
    # The margins shrink along the execution (0.5 then 0.25) so that every consecution
    # conclusion has a positivity witness over the relaxed assumptions, as the paper's
    # encoding requires.
    assertions[function.exit] = parse_assertion("ret_f - 0.25 > 0")
    assertions[function.label_by_index(2)] = parse_assertion("y - 0.5 > 0")
    invariant = Invariant(assertions=assertions)
    report = check_invariant(
        cfg,
        precondition,
        invariant,
        argument_sets=[{"x": 2}],
        pair_samples=30,
        with_certificates=True,
        epsilon=1e-3,
    )
    assert report.certificate_pairs_checked > 0
    assert report.passed, report.certificate_failures


def test_recursive_invariant_simulation(recursive_sum_cfg):
    precondition = Precondition.from_spec(recursive_sum_cfg, {"recursive_sum": {1: "n >= 0"}})
    function = recursive_sum_cfg.function("recursive_sum")
    assertions = {label: ConjunctiveAssertion.true() for label in function.labels}
    post = parse_assertion("0.5*n_init^2 + 0.5*n_init + 1 - ret_recursive_sum > 0")
    invariant = Invariant(assertions=assertions, postconditions={"recursive_sum": post})
    report = check_invariant(
        recursive_sum_cfg,
        precondition,
        invariant,
        argument_sets=[{"n": n} for n in range(0, 8)],
        pair_samples=0,
    )
    assert report.passed


# -- result objects ---------------------------------------------------------------------


def test_invariant_lookup_helpers(sum_cfg):
    label = sum_cfg.function("sum").label_by_index(9)
    invariant = Invariant(assertions={label: parse_assertion("ret_sum + 1 > 0")})
    assert not invariant.at(label).is_true()
    assert not invariant.at_index("sum", 9).is_true()
    assert invariant.at_index("sum", 1).is_true()
    assert invariant.at(Label("sum", 77, LabelKind.ASSIGN)).is_true()
    assert invariant.postcondition("sum").is_true()
    assert "sum:9" in invariant.pretty()


def test_synthesis_result_summary(sum_cfg):
    templates = TemplateSet.build(sum_cfg, degree=1)
    result = SynthesisResult(
        invariant=None,
        invariants=[],
        assignment=None,
        system=QuadraticSystem(),
        templates=templates,
        cfg=sum_cfg,
        statistics={"time_translation": 0.5},
        solver_status="infeasible-best-effort",
    )
    assert not result.success
    assert result.system_size == 0
    assert "infeasible" in result.summary()
