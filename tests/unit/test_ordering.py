"""Unit tests for repro.polynomial.ordering."""

from repro.polynomial.monomial import Monomial
from repro.polynomial.ordering import (
    MonomialOrder,
    count_monomials_up_to_degree,
    grevlex_key,
    grlex_key,
    lex_key,
    monomials_of_degree,
    monomials_up_to_degree,
    sort_monomials,
)


def test_monomials_up_to_degree_counts():
    # C(n + d, d) monomials of degree <= d over n variables.
    assert len(monomials_up_to_degree(["x"], 3)) == 4
    assert len(monomials_up_to_degree(["x", "y"], 2)) == 6
    assert len(monomials_up_to_degree(["x", "y", "z"], 2)) == 10


def test_monomials_up_to_degree_contains_one_first():
    monomials = monomials_up_to_degree(["x", "y"], 2)
    assert monomials[0] == Monomial.one()


def test_monomials_up_to_degree_zero_and_negative():
    assert monomials_up_to_degree(["x", "y"], 0) == [Monomial.one()]
    assert monomials_up_to_degree(["x"], -1) == []


def test_monomials_are_unique():
    monomials = monomials_up_to_degree(["x", "y", "z"], 3)
    assert len(monomials) == len(set(monomials))


def test_monomials_of_degree():
    exact = monomials_of_degree(["x", "y"], 2)
    assert set(exact) == {Monomial({"x": 2}), Monomial({"x": 1, "y": 1}), Monomial({"y": 2})}


def test_count_matches_enumeration():
    for variables, degree in [(1, 4), (2, 3), (3, 2), (5, 2)]:
        names = [f"v{i}" for i in range(variables)]
        assert count_monomials_up_to_degree(variables, degree) == len(
            monomials_up_to_degree(names, degree)
        )


def test_count_edge_cases():
    assert count_monomials_up_to_degree(0, 3) == 1
    assert count_monomials_up_to_degree(3, 0) == 1
    assert count_monomials_up_to_degree(-1, 2) == 0


def test_lex_vs_grlex_disagree():
    variables = ["x", "y"]
    x3 = Monomial({"x": 3})
    xy = Monomial({"x": 1, "y": 1})
    # lex puts x^3 above x*y, grlex puts x^3 (degree 3) above x*y (degree 2) too,
    # but x*y vs y^3 flips between the two orders.
    y3 = Monomial({"y": 3})
    assert lex_key(xy, variables) > lex_key(y3, variables)
    assert grlex_key(xy, variables) < grlex_key(y3, variables)
    assert grlex_key(x3, variables) > grlex_key(xy, variables)


def test_grevlex_key_orders_by_degree_first():
    variables = ["x", "y", "z"]
    assert grevlex_key(Monomial({"z": 2}), variables) > grevlex_key(Monomial({"x": 1}), variables)


def test_sort_monomials_deterministic():
    variables = ["x", "y"]
    monomials = [Monomial({"y": 1}), Monomial.one(), Monomial({"x": 1})]
    ordered = sort_monomials(monomials, variables, MonomialOrder.GRLEX)
    assert ordered[0] == Monomial.one()
    assert ordered == sort_monomials(list(reversed(monomials)), variables, MonomialOrder.GRLEX)


def test_grlex_ranks_match_enumeration_indices():
    """The vectorised rank formula agrees with the grlex enumeration order."""
    import numpy as np

    from repro.polynomial.compiled import exponent_rows
    from repro.polynomial.ordering import grlex_ranks

    for width in range(1, 5):
        for degree in range(0, 5):
            names = [f"v{i}" for i in range(width)]
            basis = monomials_up_to_degree(names, degree)
            index = {name: position for position, name in enumerate(names)}
            ranks = grlex_ranks(exponent_rows(basis, index, width))
            assert ranks.tolist() == list(range(len(basis))), (width, degree)


def test_grlex_ranks_edge_cases():
    import numpy as np

    from repro.polynomial.ordering import grlex_ranks

    # No rows at all, and the zero-variable constant monomial.
    assert grlex_ranks(np.zeros((0, 3), dtype=np.int64)).tolist() == []
    assert grlex_ranks(np.zeros((2, 0), dtype=np.int64)).tolist() == [0, 0]
