"""Unit tests for repro.lang.lexer."""

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


def test_empty_source_gives_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_keywords_vs_identifiers():
    tokens = tokenize("while whilex do dodo")
    assert tokens[0].kind is TokenKind.KEYWORD
    assert tokens[1].kind is TokenKind.IDENT
    assert tokens[2].kind is TokenKind.KEYWORD
    assert tokens[3].kind is TokenKind.IDENT


def test_numbers_including_decimals():
    assert texts("3 0.5 42.25") == ["3", "0.5", "42.25"]
    assert all(kind is TokenKind.NUMBER for kind in kinds("3 0.5 42.25")[:-1])


def test_assignment_and_comparison_symbols():
    assert texts("x := y <= z >= w") == ["x", ":=", "y", "<=", "z", ">=", "w"]


def test_double_star_lexes_as_power():
    assert "**" in texts("x ** 2") or "^" in texts("x ** 2")


def test_comments_are_skipped():
    assert texts("x := 1 // trailing comment\n y := 2") == ["x", ":=", "1", "y", ":=", "2"]
    assert texts("# full line\nskip") == ["skip"]


def test_positions_are_tracked():
    tokens = tokenize("x :=\n  y")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[2].line == 2 and tokens[2].column == 3


def test_unknown_character_raises_with_position():
    with pytest.raises(ParseError) as info:
        tokenize("x ? y")
    assert "line 1" in str(info.value)


def test_underscore_identifiers():
    assert texts("ret_sum n_init _tmp") == ["ret_sum", "n_init", "_tmp"]


def test_star_symbol():
    assert texts("if * then") == ["if", "*", "then"]
