"""Unit tests for repro.cfg.transition."""

from fractions import Fraction

import pytest

from repro.cfg.labels import Label, LabelKind
from repro.cfg.transition import CallSite, Transition, TransitionKind
from repro.errors import SemanticsError
from repro.polynomial.parse import parse_polynomial


def _labels():
    source = Label("f", 1, LabelKind.ASSIGN)
    target = Label("f", 2, LabelKind.ASSIGN)
    return source, target


def test_update_transition_applies_to_valuation():
    source, target = _labels()
    transition = Transition(
        source=source, target=target, kind=TransitionKind.UPDATE,
        update={"x": parse_polynomial("x + 1"), "y": parse_polynomial("x*x")},
    )
    updated = transition.apply_update({"x": Fraction(3), "y": Fraction(0)})
    assert updated["x"] == 4
    assert updated["y"] == 9


def test_update_transition_identity_for_unmentioned_variables():
    source, target = _labels()
    transition = Transition(source=source, target=target, kind=TransitionKind.UPDATE, update={})
    updated = transition.apply_update({"x": Fraction(7)})
    assert updated == {"x": Fraction(7)}


def test_compose_substitutes_updates():
    source, target = _labels()
    transition = Transition(
        source=source, target=target, kind=TransitionKind.UPDATE,
        update={"x": parse_polynomial("x + 1")},
    )
    composed = transition.compose(parse_polynomial("x*x"))
    assert composed == parse_polynomial("(x+1)^2")


def test_missing_payload_rejected():
    source, target = _labels()
    with pytest.raises(SemanticsError):
        Transition(source=source, target=target, kind=TransitionKind.UPDATE)
    with pytest.raises(SemanticsError):
        Transition(source=source, target=target, kind=TransitionKind.GUARD)
    with pytest.raises(SemanticsError):
        Transition(source=source, target=target, kind=TransitionKind.CALL)


def test_nondet_transition_needs_no_payload():
    source, target = _labels()
    transition = Transition(source=source, target=target, kind=TransitionKind.NONDET)
    assert transition.describe() == "*"


def test_compose_on_guard_transition_rejected():
    source, target = _labels()
    transition = Transition(
        source=source, target=target, kind=TransitionKind.NONDET,
    )
    with pytest.raises(SemanticsError):
        transition.compose(parse_polynomial("x"))
    with pytest.raises(SemanticsError):
        transition.apply_update({"x": 1})


def test_describe_and_str():
    source, target = _labels()
    call = Transition(
        source=source, target=target, kind=TransitionKind.CALL,
        call=CallSite(target="y", callee="g", arguments=("x",)),
    )
    assert "g(x)" in call.describe()
    assert str(source) in str(call)
