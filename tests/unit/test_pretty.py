"""Unit tests for repro.lang.pretty (round-trip property included)."""

import pytest

from repro.lang.ast_nodes import Comparison
from repro.lang.parser import parse_program
from repro.lang.pretty import format_function, format_predicate, pretty_print
from repro.polynomial.parse import parse_polynomial

SOURCES = [
    "f(x) { return x }",
    "f(x) { y := x*x + 1; return y }",
    "f(x) { if x >= 0 then y := 1 else y := 2 fi; return y }",
    "f(x) { if * then skip else y := x fi; return y }",
    "f(n) { i := 0; s := 0; while i <= n do s := s + i; i := i + 1 od; return s }",
    "g(a) { return a } f(x) { y := g(x); return y }",
    "f(x, y) { if x >= 0 and y > 1 or x > y then skip else skip fi; return 0 }",
]


@pytest.mark.parametrize("source", SOURCES)
def test_pretty_print_round_trips(source):
    program = parse_program(source)
    rendered = pretty_print(program)
    reparsed = parse_program(rendered)
    assert pretty_print(reparsed) == rendered


def test_format_predicate_comparison():
    predicate = Comparison(parse_polynomial("x"), "<=", parse_polynomial("n"))
    assert format_predicate(predicate) == "x <= n"


def test_format_function_contains_header_and_body(sum_program):
    rendered = format_function(sum_program.function("sum"))
    assert rendered.startswith("sum(n) {")
    assert "while" in rendered
    assert rendered.rstrip().endswith("}")


def test_pretty_print_running_example_reparses(sum_program):
    rendered = pretty_print(sum_program)
    reparsed = parse_program(rendered)
    assert reparsed.function("sum").parameters == ("n",)
    assert len(reparsed.function("sum").body) == len(sum_program.function("sum").body)
