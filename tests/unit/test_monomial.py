"""Unit tests for repro.polynomial.monomial."""

import pytest

from repro.errors import PolynomialError
from repro.polynomial.monomial import Monomial


def test_one_is_constant():
    assert Monomial.one().is_constant()
    assert Monomial.one().degree() == 0
    assert str(Monomial.one()) == "1"


def test_zero_exponents_are_dropped():
    assert Monomial({"x": 0, "y": 2}) == Monomial({"y": 2})


def test_negative_exponent_rejected():
    with pytest.raises(PolynomialError):
        Monomial({"x": -1})


def test_non_integer_exponent_rejected():
    with pytest.raises(PolynomialError):
        Monomial({"x": 1.5})


def test_empty_variable_name_rejected():
    with pytest.raises(PolynomialError):
        Monomial({"": 2})


def test_of_builds_single_variable():
    m = Monomial.of("x", 3)
    assert m.exponent("x") == 3
    assert m.exponent("y") == 0
    assert m.degree() == 3


def test_multiplication_adds_exponents():
    product = Monomial.of("x", 2) * Monomial({"x": 1, "y": 1})
    assert product == Monomial({"x": 3, "y": 1})


def test_power():
    assert Monomial({"x": 1, "y": 2}) ** 3 == Monomial({"x": 3, "y": 6})
    assert Monomial.of("x") ** 0 == Monomial.one()


def test_power_negative_rejected():
    with pytest.raises(PolynomialError):
        Monomial.of("x") ** -1


def test_divides_and_divide():
    big = Monomial({"x": 3, "y": 1})
    small = Monomial({"x": 1})
    assert small.divides(big)
    assert not big.divides(small)
    assert big.divide(small) == Monomial({"x": 2, "y": 1})


def test_divide_not_divisible_raises():
    with pytest.raises(PolynomialError):
        Monomial.of("x").divide(Monomial.of("y"))


def test_gcd_and_lcm():
    a = Monomial({"x": 2, "y": 1})
    b = Monomial({"x": 1, "z": 3})
    assert a.gcd(b) == Monomial({"x": 1})
    assert a.lcm(b) == Monomial({"x": 2, "y": 1, "z": 3})


def test_restrict_and_exclude_partition():
    m = Monomial({"x": 2, "y": 1, "z": 4})
    assert m.restrict(["x", "z"]) * m.exclude(["x", "z"]) == m
    assert m.restrict([]) == Monomial.one()
    assert m.exclude(["x", "y", "z"]) == Monomial.one()


def test_evaluate():
    m = Monomial({"x": 2, "y": 1})
    assert m.evaluate({"x": 3.0, "y": 2.0}) == 18.0


def test_evaluate_missing_variable_raises():
    with pytest.raises(PolynomialError):
        Monomial.of("x").evaluate({"y": 1.0})


def test_rename_merges_collisions():
    m = Monomial({"x": 2, "y": 1})
    assert m.rename({"y": "x"}) == Monomial({"x": 3})


def test_ordering_is_graded():
    assert Monomial.of("x") < Monomial({"x": 1, "y": 1})
    assert Monomial({"z": 1}) > Monomial.one()


def test_hash_and_equality():
    assert hash(Monomial({"x": 1, "y": 2})) == hash(Monomial({"y": 2, "x": 1}))
    assert Monomial({"x": 1}) != Monomial({"x": 2})


def test_str_formats_exponents():
    assert str(Monomial({"b": 1, "a": 2})) == "a^2*b"


def test_contains_and_bool():
    m = Monomial({"x": 1})
    assert "x" in m
    assert "y" not in m
    assert m
    assert not Monomial.one()


def test_variables():
    assert Monomial({"x": 1, "y": 2}).variables() == frozenset({"x", "y"})
