"""Unit tests for repro.semantics.scheduler and traces."""

from fractions import Fraction

import pytest

from repro.cfg.labels import Label, LabelKind
from repro.cfg.transition import Transition, TransitionKind
from repro.semantics.scheduler import AlternatingScheduler, RandomScheduler, ScriptedScheduler
from repro.semantics.traces import Configuration, StackElement, Trace


def _options():
    source = Label("f", 1, LabelKind.NONDET)
    return source, [
        Transition(source=source, target=Label("f", 2, LabelKind.ASSIGN), kind=TransitionKind.NONDET),
        Transition(source=source, target=Label("f", 3, LabelKind.ASSIGN), kind=TransitionKind.NONDET),
    ]


def test_scripted_scheduler_follows_script_then_defaults():
    label, options = _options()
    scheduler = ScriptedScheduler([1, 0, 1])
    picks = [scheduler.choose(label, options).target.index for _ in range(5)]
    assert picks == [3, 2, 3, 2, 2]


def test_scripted_scheduler_reset():
    label, options = _options()
    scheduler = ScriptedScheduler([1])
    assert scheduler.choose(label, options).target.index == 3
    scheduler.reset()
    assert scheduler.choose(label, options).target.index == 3


def test_random_scheduler_deterministic_with_seed():
    label, options = _options()
    first = [RandomScheduler(seed=5).choose(label, options).target.index for _ in range(10)]
    second = [RandomScheduler(seed=5).choose(label, options).target.index for _ in range(10)]
    assert first == second


def test_alternating_scheduler_cycles():
    label, options = _options()
    scheduler = AlternatingScheduler()
    picks = [scheduler.choose(label, options).target.index for _ in range(4)]
    assert picks == [2, 3, 2, 3]


def test_stack_element_default_zero():
    element = StackElement("f", Label("f", 1, LabelKind.ASSIGN), {"x": Fraction(2)})
    assert element.value("x") == 2
    assert element.value("missing") == 0


def test_configuration_push_pop_top():
    element = StackElement("f", Label("f", 1, LabelKind.ASSIGN), {})
    configuration = Configuration().push(element)
    assert len(configuration) == 1
    assert configuration.top() is element
    assert len(configuration.pop()) == 0
    with pytest.raises(IndexError):
        Configuration().top()
    with pytest.raises(IndexError):
        Configuration().pop()


def test_configuration_replace_top():
    first = StackElement("f", Label("f", 1, LabelKind.ASSIGN), {})
    second = StackElement("f", Label("f", 2, LabelKind.ASSIGN), {})
    configuration = Configuration().push(first).replace_top(second)
    assert configuration.top() is second
    assert len(configuration) == 1


def test_trace_iteration_helpers():
    element = StackElement("f", Label("f", 1, LabelKind.ASSIGN), {})
    trace = Trace()
    trace.append(Configuration().push(element))
    trace.append(Configuration())
    assert len(trace) == 2
    assert list(trace.top_elements()) == [element]
    assert list(trace.visited_elements()) == [element]
