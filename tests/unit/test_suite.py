"""Unit tests for the benchmark suite and harness (repro.suite, repro.bench)."""

import pytest

from repro.bench.runner import Measurement, measure_benchmark, quick_subset
from repro.bench.tables import render_measurements, render_rows, render_table1, table_rows
from repro.errors import SpecificationError
from repro.semantics.interpreter import Interpreter
from repro.semantics.scheduler import RandomScheduler
from repro.suite.registry import all_benchmarks, benchmark_names, benchmarks_by_category, get_benchmark


def test_suite_has_all_paper_benchmarks():
    names = set(benchmark_names())
    expected_table2 = {
        "cohendiv", "divbin", "hard", "mannadiv", "wensley", "sqrt", "dijkstra", "z3sqrt",
        "freire1", "freire2", "euclidex1", "euclidex2", "euclidex3", "lcm1", "lcm2",
        "prodbin", "prod4br", "cohencu", "petter",
    }
    expected_table3 = {
        "recursive-sum", "recursive-square-sum", "recursive-cube-sum", "pw2", "merge-sort",
        "inverted-pendulum", "strict-inverted-pendulum", "oscillator",
    }
    assert expected_table2 <= names
    assert expected_table3 <= names
    assert "sum" in names  # running example


def test_every_benchmark_parses_and_builds_cfg():
    for benchmark in all_benchmarks():
        cfg = benchmark.cfg()
        assert cfg.label_count() > 0


def test_variable_counts_match_paper_where_reported():
    for benchmark in all_benchmarks():
        if benchmark.paper is None or benchmark.name == "merge-sort":
            continue
        assert benchmark.variable_count() == benchmark.paper.variables, benchmark.name


def test_recursive_benchmarks_are_recursive():
    for benchmark in benchmarks_by_category("recursive"):
        assert benchmark.program().is_recursive(), benchmark.name
    for benchmark in benchmarks_by_category("nonrecursive"):
        assert not benchmark.program().is_recursive(), benchmark.name


def test_get_benchmark_and_errors():
    assert get_benchmark("sqrt").name == "sqrt"
    with pytest.raises(SpecificationError):
        get_benchmark("does-not-exist")
    with pytest.raises(SpecificationError):
        benchmarks_by_category("no-such-category")


def test_objectives_construct_for_targeted_benchmarks():
    for benchmark in all_benchmarks():
        objective = benchmark.objective()
        assert objective is not None


def test_sqrt_benchmark_semantics():
    """The sqrt benchmark really computes the integer square root."""
    benchmark = get_benchmark("sqrt")
    interpreter = Interpreter(benchmark.cfg(), scheduler=RandomScheduler(seed=0))
    for n, expected in [(0, 0), (1, 1), (8, 2), (9, 3), (26, 5)]:
        result = interpreter.run({"n": n})
        assert result.completed
        assert result.return_value == expected


def test_cohencu_benchmark_semantics():
    benchmark = get_benchmark("cohencu")
    interpreter = Interpreter(benchmark.cfg())
    result = interpreter.run({"n": 4})
    assert result.return_value == 125  # x = (n+1)^3 after the loop exits at a = n+1


def test_recursive_sum_benchmark_semantics():
    benchmark = get_benchmark("recursive-sum")
    interpreter = Interpreter(benchmark.cfg(), scheduler=RandomScheduler(seed=1))
    for n in range(0, 7):
        value = interpreter.run({"n": n}).return_value
        assert 0 <= value <= n * (n + 1) // 2


def test_benchmark_options_reflect_table_parameters():
    benchmark = get_benchmark("pw2")
    options = benchmark.options()
    assert options.degree == 1
    assert options.conjuncts == 2
    overridden = benchmark.options(degree=3)
    assert overridden.degree == 3


# -- harness -------------------------------------------------------------------------------


def test_measure_benchmark_records_row():
    benchmark = get_benchmark("freire1")
    measurement = measure_benchmark(benchmark, options=benchmark.options(upsilon=1))
    assert measurement.system_size > 0
    assert measurement.variables == 3
    assert measurement.reduction_seconds > 0
    assert measurement.paper_system_size == 1210
    assert measurement.total_seconds == pytest.approx(measurement.reduction_seconds)


def test_measure_many_survives_solver_failure():
    from repro.bench.runner import measure_many
    from repro.solvers.base import Solver

    class ExplodingSolver(Solver):
        def solve_compiled(self, problem, control=None):
            raise RuntimeError("boom")

    benchmark = get_benchmark("freire1")
    measurements = measure_many(
        [benchmark],
        solve=True,
        solver=ExplodingSolver(),
        quick=True,
        verbose=True,  # regression: the progress line must cope with solve_seconds=None
    )
    assert measurements[0].solver_status == "error"
    assert measurements[0].solve_seconds is None


def test_quick_subset_filters_by_variable_count():
    small = quick_subset(all_benchmarks(), limit_variables=4)
    assert all(benchmark.variable_count() <= 4 for benchmark in small)
    assert any(benchmark.name == "freire1" for benchmark in small)


def test_table_rendering():
    measurement = Measurement(
        name="demo", category="nonrecursive", conjuncts=1, degree=2, variables=3,
        constraint_pairs=5, system_size=100, unknowns=80, reduction_seconds=0.5,
        paper_system_size=120, paper_runtime_seconds=75.0,
    )
    rows = table_rows([measurement])
    assert rows[0]["|S|"] == "100"
    assert rows[0]["Runtime (paper)"] == "1m15.0s"
    rendered = render_measurements([measurement], title="Demo")
    assert "Demo" in rendered and "demo" in rendered
    assert render_rows([]) == "(no rows)"


def test_render_table1_contains_this_work():
    table = render_table1()
    assert "This work" in table
    assert "Colon" in table
