"""Unit tests for repro.spec.preconditions and repro.spec.postconditions."""

import pytest

from repro.errors import SpecificationError
from repro.spec.assertions import ConjunctiveAssertion, parse_assertion
from repro.spec.postconditions import Postcondition, postcondition_vocabulary
from repro.spec.preconditions import Precondition, augment_entry_preconditions, entry_assumptions


def test_trivial_precondition_defaults_to_true(sum_cfg):
    precondition = Precondition.trivial()
    for label in sum_cfg.function("sum").labels:
        assert precondition.at(label).is_true()


def test_from_spec_sets_label(sum_cfg, sum_precondition):
    entry = sum_cfg.function("sum").entry
    assert not sum_precondition.at(entry).is_true()
    assert sum_precondition.holds_at(entry, {"n": 1.0})
    assert not sum_precondition.holds_at(entry, {"n": 0.0})


def test_strict_inequalities_rejected(sum_cfg):
    precondition = Precondition.trivial()
    entry = sum_cfg.function("sum").entry
    with pytest.raises(SpecificationError):
        precondition.set(entry, parse_assertion("n > 0"))


def test_strengthen_conjoins(sum_cfg):
    precondition = Precondition.trivial()
    entry = sum_cfg.function("sum").entry
    precondition.strengthen(entry, parse_assertion("n >= 0"))
    precondition.strengthen(entry, parse_assertion("n >= 1"))
    assert len(precondition.at(entry)) == 2


def test_at_entry_constructor(sum_cfg):
    precondition = Precondition.at_entry(sum_cfg, {"sum": "n >= 3"})
    assert precondition.holds_at(sum_cfg.function("sum").entry, {"n": 3.0})


def test_copy_is_independent(sum_cfg, sum_precondition):
    copy = sum_precondition.copy()
    entry = sum_cfg.function("sum").entry
    copy.strengthen(entry, parse_assertion("n >= 100"))
    assert len(sum_precondition.at(entry)) == 1


def test_entry_assumptions_tie_parameters_and_zero_locals(sum_cfg):
    assumptions = entry_assumptions(sum_cfg.function("sum"))
    # i = 0, s = 0, ret_sum = 0, n = n_init: each equality is two inequalities.
    assert assumptions.holds({"n": 5.0, "n_init": 5.0, "i": 0.0, "s": 0.0, "ret_sum": 0.0})
    assert not assumptions.holds({"n": 5.0, "n_init": 4.0, "i": 0.0, "s": 0.0, "ret_sum": 0.0})
    assert not assumptions.holds({"n": 5.0, "n_init": 5.0, "i": 1.0, "s": 0.0, "ret_sum": 0.0})


def test_augment_entry_preconditions(sum_cfg, sum_precondition):
    augmented = augment_entry_preconditions(sum_cfg, sum_precondition)
    entry = sum_cfg.function("sum").entry
    assert len(augmented.at(entry)) > len(sum_precondition.at(entry))
    # Non-entry labels are unchanged.
    other = sum_cfg.function("sum").label_by_index(5)
    assert augmented.at(other).is_true()


def test_precondition_str(sum_precondition):
    assert "sum:1" in str(sum_precondition)
    assert str(Precondition.trivial()) == "true everywhere"


def test_labels_lists_only_nontrivial(sum_cfg, sum_precondition):
    assert len(sum_precondition.labels()) == 1


# -- post-conditions -----------------------------------------------------------------


def test_postcondition_vocabulary(recursive_sum_cfg):
    vocabulary = postcondition_vocabulary(recursive_sum_cfg, "recursive_sum")
    assert set(vocabulary) == {"ret_recursive_sum", "n_init"}


def test_postcondition_from_spec(recursive_sum_cfg):
    postcondition = Postcondition.from_spec(
        recursive_sum_cfg, {"recursive_sum": "n_init*n_init + n_init + 1 - ret_recursive_sum > 0"}
    )
    assert not postcondition.of("recursive_sum").is_true()
    assert postcondition.holds_for("recursive_sum", {"n_init": 2.0, "ret_recursive_sum": 3.0})
    assert postcondition.of("unknown").is_true()


def test_postcondition_rejects_program_variables(recursive_sum_cfg):
    with pytest.raises(SpecificationError):
        Postcondition.from_spec(recursive_sum_cfg, {"recursive_sum": "s > 0"})


def test_postcondition_trivial_and_str(recursive_sum_cfg):
    trivial = Postcondition.trivial()
    assert trivial.functions() == []
    assert "every function" in str(trivial)
    postcondition = Postcondition.from_spec(
        recursive_sum_cfg, {"recursive_sum": "ret_recursive_sum + 1 > 0"}
    )
    assert postcondition.functions() == ["recursive_sum"]
    assert "recursive_sum" in str(postcondition)
