"""Unit tests for the Step-4 solvers on small hand-written systems."""

import numpy as np
import pytest

from repro.invariants.quadratic_system import QuadraticSystem
from repro.polynomial.parse import parse_polynomial
from repro.solvers.alternating import AlternatingSolver
from repro.solvers.base import SolverOptions
from repro.solvers.numeric import VectorisedSystem
from repro.solvers.qclp import PenaltyQCLPSolver
from repro.solvers.strong import RepresentativeEnumerator


def bilinear_system():
    """A tiny bilinear feasibility problem: s*t = 1, t >= 0, s >= 0."""
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_f_1_0_0 * $t_c0_0_0 - 1"))
    system.add_nonnegative(parse_polynomial("$t_c0_0_0"))
    system.add_nonnegative(parse_polynomial("$s_f_1_0_0"))
    return system


def objective_system():
    """Feasible region s >= 2 with objective (s - 3)^2."""
    system = QuadraticSystem()
    system.add_nonnegative(parse_polynomial("$s_f_1_0_0 - 2"))
    system.objective = parse_polynomial("($s_f_1_0_0 - 3)^2")
    return system


# -- VectorisedSystem -----------------------------------------------------------------


def test_vectorised_values_and_residuals():
    system = bilinear_system()
    vectorised = VectorisedSystem(system)
    point = vectorised.vector({"$s_f_1_0_0": 2.0, "$t_c0_0_0": 0.5})
    assert vectorised.max_violation(point) == pytest.approx(0.0, abs=1e-12)
    bad = vectorised.vector({"$s_f_1_0_0": 2.0, "$t_c0_0_0": -1.0})
    assert vectorised.max_violation(bad) > 1.0


def test_vectorised_penalty_gradient_matches_finite_difference():
    system = bilinear_system()
    vectorised = VectorisedSystem(system)
    rng = np.random.default_rng(0)
    point = rng.normal(size=vectorised.dimension)
    analytic = vectorised.penalty_gradient(point, rho=10.0)
    numeric = np.zeros_like(point)
    step = 1e-6
    for i in range(point.size):
        forward = point.copy()
        forward[i] += step
        backward = point.copy()
        backward[i] -= step
        numeric[i] = (vectorised.penalty(forward, 10.0) - vectorised.penalty(backward, 10.0)) / (2 * step)
    assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-5)


def test_vectorised_objective():
    system = objective_system()
    vectorised = VectorisedSystem(system)
    point = vectorised.vector({"$s_f_1_0_0": 3.0})
    assert vectorised.objective_value(point) == pytest.approx(0.0)
    assert vectorised.objective_value(vectorised.vector({"$s_f_1_0_0": 5.0})) == pytest.approx(4.0)


def test_vectorised_residual_jacobian_masks_inactive_inequalities():
    system = objective_system()
    vectorised = VectorisedSystem(system)
    satisfied = vectorised.vector({"$s_f_1_0_0": 5.0})
    jacobian = vectorised.residual_jacobian(satisfied)
    assert jacobian.nnz == 0  # inequality inactive: row is zeroed


# -- PenaltyQCLPSolver -----------------------------------------------------------------


def test_penalty_solver_finds_bilinear_solution():
    solver = PenaltyQCLPSolver(SolverOptions(restarts=3, max_iterations=200))
    result = solver.solve(bilinear_system())
    assert result.feasible
    assignment = result.assignment
    assert assignment["$s_f_1_0_0"] * assignment["$t_c0_0_0"] == pytest.approx(1.0, abs=1e-4)


def test_penalty_solver_tracks_objective():
    solver = PenaltyQCLPSolver(SolverOptions(restarts=2, max_iterations=200))
    result = solver.solve(objective_system())
    assert result.feasible
    assert result.assignment["$s_f_1_0_0"] == pytest.approx(3.0, abs=1e-2)


def test_penalty_solver_reports_infeasible_best_effort():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_a_0_0_0 * $s_a_0_0_0 + 1"))  # s^2 = -1: infeasible
    solver = PenaltyQCLPSolver(SolverOptions(restarts=2, max_iterations=100))
    result = solver.solve(system)
    assert not result.feasible
    assert result.status == "infeasible-best-effort"
    assert result.max_violation is not None and result.max_violation > 0.1


def test_penalty_solver_trivial_system():
    result = PenaltyQCLPSolver().solve(QuadraticSystem())
    assert result.feasible
    assert result.status == "trivial"


# -- AlternatingSolver ------------------------------------------------------------------


def test_alternating_solver_on_bilinear_system():
    solver = AlternatingSolver(SolverOptions(restarts=2, max_iterations=150), sweeps=3)
    result = solver.solve(bilinear_system())
    assert result.feasible
    product = result.assignment["$s_f_1_0_0"] * result.assignment["$t_c0_0_0"]
    assert product == pytest.approx(1.0, abs=1e-3)


def test_alternating_solver_trivial_system():
    result = AlternatingSolver().solve(QuadraticSystem())
    assert result.status == "trivial"


# -- RepresentativeEnumerator --------------------------------------------------------------


def test_enumerator_finds_multiple_components():
    # (s - 1)*(s + 1) = 0 has two connected components {1} and {-1}.
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_f_1_0_0^2 - 1"))
    enumerator = RepresentativeEnumerator(attempts=8, options=SolverOptions(max_iterations=150, seed=1))
    result = enumerator.enumerate(system)
    assert result.feasible_attempts >= 2
    values = sorted(round(rep["$s_f_1_0_0"]) for rep in result.representatives)
    assert -1 in values and 1 in values


def test_enumerator_reports_attempts():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_f_1_0_0 - 2"))
    enumerator = RepresentativeEnumerator(attempts=3, options=SolverOptions(max_iterations=50))
    result = enumerator.enumerate(system)
    assert result.attempts == 3
    assert result.count >= 1
