"""Unit tests for the Step-4 solvers on small hand-written systems."""

import time

import numpy as np
import pytest

from repro.invariants.quadratic_system import QuadraticSystem
from repro.invariants.synthesis import build_task
from repro.polynomial.parse import parse_polynomial
from repro.solvers.alternating import AlternatingSolver
from repro.solvers.base import SolverOptions
from repro.solvers.problem import CompiledProblem, Deadline, compile_problem
from repro.solvers.qclp import GaussNewtonSolver, PenaltyQCLPSolver
from repro.solvers.strong import RepresentativeEnumerator
from repro.suite.registry import get_benchmark


def bilinear_system():
    """A tiny bilinear feasibility problem: s*t = 1, t >= 0, s >= 0."""
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_f_1_0_0 * $t_c0_0_0 - 1"))
    system.add_nonnegative(parse_polynomial("$t_c0_0_0"))
    system.add_nonnegative(parse_polynomial("$s_f_1_0_0"))
    return system


def objective_system():
    """Feasible region s >= 2 with objective (s - 3)^2."""
    system = QuadraticSystem()
    system.add_nonnegative(parse_polynomial("$s_f_1_0_0 - 2"))
    system.objective = parse_polynomial("($s_f_1_0_0 - 3)^2")
    return system


# -- CompiledProblem -----------------------------------------------------------------


def test_compiled_values_and_residuals():
    system = bilinear_system()
    problem = compile_problem(system)
    point = problem.vector({"$s_f_1_0_0": 2.0, "$t_c0_0_0": 0.5})
    assert problem.max_violation(point) == pytest.approx(0.0, abs=1e-12)
    bad = problem.vector({"$s_f_1_0_0": 2.0, "$t_c0_0_0": -1.0})
    assert problem.max_violation(bad) > 1.0


def test_compiled_penalty_gradient_matches_finite_difference():
    system = bilinear_system()
    problem = compile_problem(system)
    rng = np.random.default_rng(0)
    point = rng.normal(size=problem.dimension)
    analytic = problem.penalty_gradient(point, rho=10.0)
    numeric = np.zeros_like(point)
    step = 1e-6
    for i in range(point.size):
        forward = point.copy()
        forward[i] += step
        backward = point.copy()
        backward[i] -= step
        numeric[i] = (problem.penalty(forward, 10.0) - problem.penalty(backward, 10.0)) / (2 * step)
    assert np.allclose(analytic, numeric, rtol=1e-4, atol=1e-5)


def test_compiled_objective():
    system = objective_system()
    problem = compile_problem(system)
    point = problem.vector({"$s_f_1_0_0": 3.0})
    assert problem.objective_value(point) == pytest.approx(0.0)
    assert problem.objective_value(problem.vector({"$s_f_1_0_0": 5.0})) == pytest.approx(4.0)


def test_compiled_residual_jacobian_masks_inactive_inequalities():
    system = objective_system()
    problem = compile_problem(system)
    satisfied = problem.vector({"$s_f_1_0_0": 5.0})
    jacobian = problem.residual_jacobian(satisfied)
    assert jacobian.nnz == 0  # inequality inactive: row is zeroed


def test_compile_problem_is_memoised_per_system():
    system = bilinear_system()
    assert compile_problem(system) is compile_problem(system)
    # A different margin is a different compilation.
    assert compile_problem(system, strict_margin=1e-3) is not compile_problem(system)
    # Mutating the system invalidates the memo key.
    before = compile_problem(system)
    system.add_nonnegative(parse_polynomial("$s_f_1_0_0 - 1"))
    after = compile_problem(system)
    assert after is not before
    assert after.row_count == before.row_count + 1
    # Reassigning the objective (same constraint count) also invalidates it.
    system.objective = parse_polynomial("$s_f_1_0_0 * $s_f_1_0_0")
    reassigned = compile_problem(system)
    assert reassigned is not after
    assert reassigned.objective_value(reassigned.vector({"$s_f_1_0_0": 2.0})) == pytest.approx(4.0)


def test_compiled_problem_cache_never_pickles():
    import pickle

    system = bilinear_system()
    compile_problem(system)
    clone = pickle.loads(pickle.dumps(system))
    assert not hasattr(clone, "_compiled_problems")
    assert clone.size == system.size


def test_compiled_role_masks():
    system = bilinear_system()
    problem = compile_problem(system)
    by_name = dict(zip(problem.variables, problem.template_mask))
    assert by_name["$s_f_1_0_0"] and not by_name["$t_c0_0_0"]


# -- Deadline ---------------------------------------------------------------------------


def test_deadline_never_and_after():
    assert not Deadline.never().expired()
    assert Deadline.never().remaining() is None
    expired = Deadline.after(0.0)
    assert expired.expired()
    assert expired.remaining() == 0.0
    assert not Deadline.after(60.0).expired()


# -- PenaltyQCLPSolver -----------------------------------------------------------------


def test_penalty_solver_finds_bilinear_solution():
    solver = PenaltyQCLPSolver(SolverOptions(restarts=3, max_iterations=200))
    result = solver.solve(bilinear_system())
    assert result.feasible
    assignment = result.assignment
    assert assignment["$s_f_1_0_0"] * assignment["$t_c0_0_0"] == pytest.approx(1.0, abs=1e-4)


def test_penalty_solver_tracks_objective():
    solver = PenaltyQCLPSolver(SolverOptions(restarts=2, max_iterations=200))
    result = solver.solve(objective_system())
    assert result.feasible
    assert result.assignment["$s_f_1_0_0"] == pytest.approx(3.0, abs=1e-2)


def test_penalty_solver_reports_infeasible_best_effort():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_a_0_0_0 * $s_a_0_0_0 + 1"))  # s^2 = -1: infeasible
    solver = PenaltyQCLPSolver(SolverOptions(restarts=2, max_iterations=100))
    result = solver.solve(system)
    assert not result.feasible
    assert result.status == "infeasible-best-effort"
    assert result.max_violation is not None and result.max_violation > 0.1


def test_penalty_solver_trivial_system():
    result = PenaltyQCLPSolver().solve(QuadraticSystem())
    assert result.feasible
    assert result.status == "trivial"


@pytest.mark.parametrize("batch", ["on", "rows", "off"])
def test_time_limit_is_enforced_inside_iteration_loops(batch):
    """Regression: a restart's inner optimisation loop must respect the deadline.

    The ``sum`` system grinds for seconds at this iteration budget — the
    legacy loop inside restart 0, the batched engines on the jittered later
    members — and the historical implementation only checked the limit
    *between* restarts, so a tiny ``time_limit`` was ignored entirely.  The
    deadline checks live inside every engine's iteration loop, so the solve
    returns almost immediately in all three batch modes.
    """
    benchmark = get_benchmark("sum")
    task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(),
                      benchmark.options(upsilon=1))
    solver = PenaltyQCLPSolver(
        SolverOptions(restarts=3, max_iterations=100_000, time_limit=0.25, batch=batch)
    )
    start = time.monotonic()
    result = solver.solve(task.system)
    elapsed = time.monotonic() - start
    assert elapsed < 3.0  # generous CI margin over the 0.25s budget
    assert result.restarts_used >= 1  # the limit struck inside a restart
    assert result.details["timed_out"] == 1.0


# -- GaussNewtonSolver ------------------------------------------------------------------


def test_gauss_newton_solver_on_bilinear_system():
    solver = GaussNewtonSolver(SolverOptions(restarts=4, max_iterations=200, seed=1))
    result = solver.solve(bilinear_system())
    assert result.feasible
    product = result.assignment["$s_f_1_0_0"] * result.assignment["$t_c0_0_0"]
    assert product == pytest.approx(1.0, abs=1e-3)


def test_gauss_newton_solver_trivial_and_unconstrained():
    assert GaussNewtonSolver().solve(QuadraticSystem()).status == "trivial"
    unconstrained = QuadraticSystem()
    unconstrained.objective = parse_polynomial("$s_f_1_0_0 * $s_f_1_0_0")
    result = GaussNewtonSolver().solve(unconstrained)
    assert result.feasible and result.max_violation == 0.0


# -- AlternatingSolver ------------------------------------------------------------------


def test_alternating_solver_on_bilinear_system():
    solver = AlternatingSolver(SolverOptions(restarts=2, max_iterations=150), sweeps=3)
    result = solver.solve(bilinear_system())
    assert result.feasible
    product = result.assignment["$s_f_1_0_0"] * result.assignment["$t_c0_0_0"]
    assert product == pytest.approx(1.0, abs=1e-3)


def test_alternating_solver_trivial_system():
    result = AlternatingSolver().solve(QuadraticSystem())
    assert result.status == "trivial"


# -- RepresentativeEnumerator --------------------------------------------------------------


def test_enumerator_finds_multiple_components():
    # (s - 1)*(s + 1) = 0 has two connected components {1} and {-1}.
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_f_1_0_0^2 - 1"))
    enumerator = RepresentativeEnumerator(attempts=8, options=SolverOptions(max_iterations=150, seed=1))
    result = enumerator.enumerate(system)
    assert result.feasible_attempts >= 2
    values = sorted(round(rep["$s_f_1_0_0"]) for rep in result.representatives)
    assert -1 in values and 1 in values


def test_enumerator_reports_attempts():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_f_1_0_0 - 2"))
    enumerator = RepresentativeEnumerator(attempts=3, options=SolverOptions(max_iterations=50))
    result = enumerator.enumerate(system)
    assert result.attempts == 3
    assert result.count >= 1


# -- batched multi-start (batch="on"/"rows"/"off") -------------------------------------


def test_solver_options_reject_unknown_batch_mode():
    with pytest.raises(ValueError):
        SolverOptions(batch="sometimes")


def test_batch_modes_agree_on_winning_assignment():
    """`batch="on"` and the one-member-at-a-time replay pick the same winner."""
    for system in (bilinear_system(), objective_system()):
        fingerprints = []
        for mode in ("on", "rows"):
            options = SolverOptions(restarts=3, max_iterations=200, batch=mode)
            result = PenaltyQCLPSolver(options).solve(system)
            fingerprints.append((result.assignment, result.status, result.max_violation))
        assert fingerprints[0] == fingerprints[1]


def test_solver_results_report_kernel_counters():
    system = bilinear_system()
    for mode, width in (("on", 3), ("rows", 1), ("off", 0)):
        options = SolverOptions(restarts=3, max_iterations=200, batch=mode)
        result = PenaltyQCLPSolver(options).solve(system)
        assert result.feasible
        assert result.residual_evaluations > 0
        assert result.jacobian_evaluations > 0
        assert result.batch_width == width


def test_start_batch_rows_are_pairwise_distinct():
    """No two restart rows may coincide — including warm rows vs the warm point.

    Regression for the zero-jitter bug: ``warm_scale * attempt`` gave the
    first warm perturbation a zero scale, duplicating the already-explored
    warm point.  Restart 0's cold row is the *deliberate* role-floor origin
    (a single deterministic row under every seed); every other row must
    carry a strictly positive, strictly growing jitter scale.
    """
    from repro.solvers.batched import start_batch
    from repro.solvers.problem import SolveControl

    problem = compile_problem(bilinear_system())
    solvers = (
        PenaltyQCLPSolver(SolverOptions()),
        GaussNewtonSolver(SolverOptions()),
        AlternatingSolver(SolverOptions()),
    )
    warm_scales = (lambda a: 0.05 * (a + 1), lambda a: 0.1 * (a + 1), None)
    for seed in (0, 7):
        for solver, warm_scale in zip(solvers, warm_scales):
            solver.options = SolverOptions(seed=seed)
            control = SolveControl(deadline=Deadline.never(), tolerance=1e-6)
            warm = problem.vector({"$s_f_1_0_0": 1.0, "$t_c0_0_0": 1.0})
            control.report(warm, 0.0, 0.0)
            assert control.warm_start() is not None
            points = start_batch(
                problem,
                control,
                np.random.default_rng(seed),
                restarts=4,
                cold_scale=solver._cold_scale,
                warm_scale=warm_scale,
            )
            rows = [tuple(row) for row in points]
            assert len(set(rows)) == len(rows), (type(solver).__name__, seed)
            # Warm rows are perturbations, never the warm point itself.
            for row in points:
                assert not np.array_equal(row, warm)
