"""Unit tests for repro.spec.assertions."""

import pytest

from repro.cfg.dnf import AtomicInequality
from repro.errors import SpecificationError
from repro.polynomial.parse import parse_polynomial
from repro.spec.assertions import ConjunctiveAssertion, assertion_from_polynomials, parse_assertion


def test_true_assertion():
    assertion = ConjunctiveAssertion.true()
    assert assertion.is_true()
    assert assertion.holds({})
    assert str(assertion) == "true"
    assert len(assertion) == 0


def test_nonneg_positive_and_equals_constructors():
    p = parse_polynomial("x - 1")
    assert not ConjunctiveAssertion.nonneg(p).atoms[0].strict
    assert ConjunctiveAssertion.positive(p).atoms[0].strict
    equality = ConjunctiveAssertion.equals(p)
    assert len(equality) == 2
    assert equality.holds({"x": 1.0})
    assert not equality.holds({"x": 2.0})


def test_holds_conjunction():
    assertion = parse_assertion("x >= 0 and y > 1")
    assert assertion.holds({"x": 0.0, "y": 2.0})
    assert not assertion.holds({"x": 0.0, "y": 1.0})
    assert not assertion.holds({"x": -1.0, "y": 2.0})


def test_parse_assertion_true_spellings():
    assert parse_assertion("").is_true()
    assert parse_assertion("true").is_true()


def test_parse_assertion_rejects_disjunction():
    with pytest.raises(SpecificationError):
        parse_assertion("x >= 0 or y >= 0")


def test_parse_assertion_rejects_trailing_garbage():
    with pytest.raises(SpecificationError):
        parse_assertion("x >= 0 (")


def test_conjoin_deduplicates():
    a = parse_assertion("x >= 0 and y >= 0")
    b = parse_assertion("y >= 0 and z > 0")
    merged = a.conjoin(b)
    assert len(merged) == 3


def test_add_atom():
    assertion = ConjunctiveAssertion.true().add(AtomicInequality(parse_polynomial("x"), strict=True))
    assert len(assertion) == 1
    assert assertion.atoms[0].strict


def test_substitute():
    assertion = parse_assertion("x - y >= 0")
    substituted = assertion.substitute({"x": parse_polynomial("y + 3")})
    assert substituted.holds({"y": 0.0})
    assert substituted.atoms[0].polynomial == parse_polynomial("3")


def test_relaxed():
    assertion = ConjunctiveAssertion.positive(parse_polynomial("x"))
    assert all(not atom.strict for atom in assertion.relaxed())


def test_variables_and_degree():
    assertion = parse_assertion("x*x - y >= 0 and z > 0")
    assert assertion.variables() == frozenset({"x", "y", "z"})
    assert assertion.max_degree() == 2
    assert ConjunctiveAssertion.true().max_degree() == 0


def test_polynomials_order_preserved():
    assertion = parse_assertion("x >= 0 and y >= 1")
    polys = assertion.polynomials()
    assert polys[0] == parse_polynomial("x")
    assert polys[1] == parse_polynomial("y - 1")


def test_assertion_from_polynomials():
    assertion = assertion_from_polynomials([parse_polynomial("x"), parse_polynomial("y")], strict=True)
    assert len(assertion) == 2
    assert all(atom.strict for atom in assertion)
