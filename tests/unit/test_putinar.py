"""Unit tests for repro.invariants.putinar, handelman and quadratic_system (Step 3)."""

import pytest

from repro.errors import SynthesisError
from repro.invariants.constraints import ConstraintPair
from repro.invariants.handelman import handelman_translate
from repro.invariants.putinar import putinar_translate
from repro.invariants.quadratic_system import (
    ConstraintKind,
    QuadraticConstraint,
    QuadraticSystem,
    VariableRole,
    classify_unknown,
)
from repro.polynomial.parse import parse_polynomial
from repro.polynomial.polynomial import Polynomial


def simple_pair():
    """x >= 0  ==>  s*x + 1 > 0 with one template unknown."""
    return ConstraintPair(
        name="pair",
        assumptions=(parse_polynomial("x"),),
        conclusion=parse_polynomial("$s_f_1_0_0") * parse_polynomial("x") + 1,
        program_variables=("x",),
    )


def test_putinar_constraints_are_quadratic():
    system = putinar_translate([simple_pair()], upsilon=2)
    assert system.size > 0
    for constraint in system:
        assert constraint.polynomial.degree() <= 2


def test_putinar_introduces_all_variable_roles():
    system = putinar_translate([simple_pair()], upsilon=2)
    roles = system.variables_by_role()
    assert roles[VariableRole.TEMPLATE]
    assert roles[VariableRole.MULTIPLIER]
    assert roles[VariableRole.CHOLESKY]
    assert roles[VariableRole.WITNESS]


def test_putinar_witness_optional():
    with_witness = putinar_translate([simple_pair()], upsilon=2, with_witness=True)
    without = putinar_translate([simple_pair()], upsilon=2, with_witness=False)
    assert without.size < with_witness.size
    assert not without.variables_by_role()[VariableRole.WITNESS]


def test_putinar_without_sos_encoding_is_smaller():
    full = putinar_translate([simple_pair()], upsilon=2)
    relaxed = putinar_translate([simple_pair()], upsilon=2, encode_sos=False)
    assert relaxed.size < full.size
    assert not relaxed.variables_by_role()[VariableRole.CHOLESKY]


def test_putinar_size_grows_with_upsilon():
    small = putinar_translate([simple_pair()], upsilon=1)
    large = putinar_translate([simple_pair()], upsilon=4)
    assert large.size > small.size


def test_putinar_objective_attached():
    objective = parse_polynomial("$s_f_1_0_0") ** 2
    system = putinar_translate([simple_pair()], upsilon=2, objective=objective)
    assert system.objective == objective


def test_putinar_coefficient_matching_on_known_certificate():
    """For the concrete pair x >= 0 ==> x + 1 > 0, the values eps=1, h_0=0, h_1=1
    satisfy every generated equality (the certificate x + 1 = 1 + 0 + 1*x)."""
    pair = ConstraintPair(
        name="concrete",
        assumptions=(parse_polynomial("x"),),
        conclusion=parse_polynomial("x + 1"),
        program_variables=("x",),
    )
    system = putinar_translate([pair], upsilon=2)
    assignment = {name: 0.0 for name in system.variables()}
    assignment["$eps_c0"] = 1.0
    # h_1 must equal the constant 1: its t-coefficient of the monomial 1 is t_c0_1_0,
    # and its Gram matrix is L = diag(1, 0) so the (0,0) Cholesky entry is 1.
    assignment["$t_c0_1_0"] = 1.0
    assignment["$l_c0_1_0_0"] = 1.0
    assert system.satisfied(assignment, tolerance=1e-9)


def test_handelman_translation_no_gram_matrices():
    system = handelman_translate([simple_pair()], max_factors=2)
    roles = system.variables_by_role()
    assert not roles[VariableRole.CHOLESKY]
    assert roles[VariableRole.MULTIPLIER]
    for constraint in system:
        assert constraint.polynomial.degree() <= 2


def test_handelman_smaller_than_putinar():
    pair = simple_pair()
    assert handelman_translate([pair]).size < putinar_translate([pair], upsilon=2).size


# -- QuadraticSystem ------------------------------------------------------------------


def test_quadratic_constraint_rejects_cubic():
    with pytest.raises(SynthesisError):
        QuadraticConstraint(polynomial=parse_polynomial("x*y*z"), kind=ConstraintKind.EQUALITY)


def test_system_add_helpers_skip_trivial_and_detect_inconsistent():
    system = QuadraticSystem()
    system.add_equality(Polynomial.zero())
    assert system.size == 0
    with pytest.raises(SynthesisError):
        system.add_equality(Polynomial.constant(3), origin="bad")


def test_violation_and_satisfaction():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("a - 2"))
    system.add_nonnegative(parse_polynomial("b"))
    system.add_positive(parse_polynomial("c"))
    good = {"a": 2.0, "b": 0.0, "c": 1.0}
    bad = {"a": 3.0, "b": -1.0, "c": 0.0}
    assert system.satisfied(good)
    assert not system.satisfied(bad)
    assert system.max_violation(good) == pytest.approx(0.0, abs=1e-9)
    assert system.max_violation(bad) >= 1.0
    assert len(system.violated_constraints(bad)) >= 2


def test_counts_and_variables():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_f_1_0_0 - $t_c0_0_0"))
    system.add_nonnegative(parse_polynomial("$l_c0_0_0_0"))
    counts = system.counts()
    assert counts["constraints"] == 2
    assert counts["equalities"] == 1
    assert counts["inequalities"] == 1
    assert counts["template_variables"] == 1
    assert counts["cholesky_variables"] == 1


def test_classify_unknown():
    assert classify_unknown("$s_f_1_0_0") is VariableRole.TEMPLATE
    assert classify_unknown("$t_c0_1_2") is VariableRole.MULTIPLIER
    assert classify_unknown("$l_c0_1_0_0") is VariableRole.CHOLESKY
    assert classify_unknown("$eps_c0") is VariableRole.WITNESS
    assert classify_unknown("x") is VariableRole.OTHER


def test_compiled_system_roundtrip():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_a_1_0_0 * $t_c0_0_0 - 1"))
    system.objective = parse_polynomial("$s_a_1_0_0 ** 2")
    compiled = system.compile()
    assignment = {"$s_a_1_0_0": 2.0, "$t_c0_0_0": 0.5}
    vector = compiled.vector_from_assignment(assignment)
    assert compiled.assignment_from_vector(vector) == assignment
    assert compiled.constraints[0].value(vector) == pytest.approx(0.0)
    assert compiled.objective.value(vector) == pytest.approx(4.0)


def test_merge_systems():
    first = QuadraticSystem()
    first.add_nonnegative(parse_polynomial("$t_a_0_0"))
    second = QuadraticSystem()
    second.add_nonnegative(parse_polynomial("$t_b_0_0"))
    first.merge(second)
    assert first.size == 2
