"""Unit tests for repro.spec.bounded (the bounded-reals model)."""

from repro.spec.bounded import (
    apply_bounded_reals_model,
    ball_constraint,
    box_constraints,
    satisfies_compactness,
)
from repro.spec.preconditions import Precondition


def test_ball_constraint_shape(sum_cfg):
    function = sum_cfg.function("sum")
    ball = ball_constraint(function, 10)
    assert len(ball) == 1
    polynomial = ball.atoms[0].polynomial
    # constant term c^2 * |V^f| and one -v^2 term per variable
    assert polynomial.constant_term() == 100 * len(function.variables)
    assert polynomial.degree() == 2


def test_ball_constraint_holds_inside_box(sum_cfg):
    function = sum_cfg.function("sum")
    ball = ball_constraint(function, 10)
    inside = {name: 1.0 for name in function.variables}
    outside = {name: 100.0 for name in function.variables}
    assert ball.holds(inside)
    assert not ball.holds(outside)


def test_box_constraints_two_per_variable(sum_cfg):
    function = sum_cfg.function("sum")
    boxes = box_constraints(function, 5)
    assert len(boxes) == 2 * len(function.variables)
    assert boxes.holds({name: 5.0 for name in function.variables})
    assert not boxes.holds({name: 6.0 for name in function.variables})


def test_apply_bounded_reals_model_adds_ball_everywhere(sum_cfg, sum_precondition):
    bounded = apply_bounded_reals_model(sum_cfg, sum_precondition, bound=10)
    for label in sum_cfg.function("sum").labels:
        assert len(bounded.at(label)) >= 1
    # The original pre-condition is untouched.
    assert len(sum_precondition.at(sum_cfg.function("sum").label_by_index(5))) == 0


def test_apply_bounded_reals_model_with_boxes(sum_cfg):
    bounded = apply_bounded_reals_model(sum_cfg, Precondition.trivial(), bound=10, include_boxes=True)
    label = sum_cfg.function("sum").label_by_index(3)
    function = sum_cfg.function("sum")
    assert len(bounded.at(label)) == 1 + 2 * len(function.variables)


def test_satisfies_compactness(sum_cfg, sum_precondition):
    assert not satisfies_compactness(sum_precondition, sum_cfg)
    bounded = apply_bounded_reals_model(sum_cfg, sum_precondition, bound=10)
    assert satisfies_compactness(bounded, sum_cfg)
