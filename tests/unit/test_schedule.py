"""Tests of the solve corpus and the nearest-neighbour scheduler (repro.schedule)."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.schedule import (
    CORPUS_SCHEMA_VERSION,
    FEATURE_NAMES,
    RequestFeatures,
    Scheduler,
    SolveCorpus,
    SolveRecord,
    default_corpus_path,
    ladder_for,
    stable_fingerprints,
)
from repro.schedule.corpus import CORPUS_PATH_ENV

LINE_UP = ("gauss-newton", "qclp", "alternating")


def features_for(program: str = "x := x + 1", degree: float = 2.0, **overrides) -> RequestFeatures:
    program_sha, reduction_sha = stable_fingerprints(program, "null", ("putinar",), "None")
    fields = dict(
        program_sha=program_sha,
        reduction_sha=reduction_sha,
        program_chars=float(len(program)),
        program_lines=1.0,
        degree=degree,
        pairs=4.0,
        template_coefficients=6.0,
        system_size=40.0,
    )
    fields.update(overrides)
    return RequestFeatures(**fields)


def record_for(
    strategy: str = "gauss-newton",
    seconds: float = 0.05,
    features: RequestFeatures | None = None,
    **overrides,
) -> SolveRecord:
    fields = dict(
        features=features if features is not None else features_for(),
        strategy=strategy,
        solver_status="feasible",
        feasible=True,
        solve_seconds=seconds,
        strategy_seconds={strategy: seconds},
        degree=2,
        verified=True,
    )
    fields.update(overrides)
    return SolveRecord(**fields)


# -- fingerprints ------------------------------------------------------------------


def test_stable_fingerprints_are_deterministic_and_content_sensitive():
    first = stable_fingerprints("prog", "pre", ("putinar", True), "obj")
    again = stable_fingerprints("prog", "pre", ("putinar", True), "obj")
    assert first == again
    other_program = stable_fingerprints("prog2", "pre", ("putinar", True), "obj")
    assert other_program[0] != first[0] and other_program[1] != first[1]
    other_knobs = stable_fingerprints("prog", "pre", ("handelman", True), "obj")
    assert other_knobs[0] == first[0]  # program unchanged
    assert other_knobs[1] != first[1]  # reduction changed


def test_default_corpus_path_honours_environment_override(monkeypatch, tmp_path):
    override = str(tmp_path / "corpus.jsonl")
    monkeypatch.setenv(CORPUS_PATH_ENV, override)
    assert default_corpus_path() == override
    monkeypatch.delenv(CORPUS_PATH_ENV)
    assert default_corpus_path().endswith(os.path.join("repro", "solve_corpus.jsonl"))


# -- corpus ------------------------------------------------------------------------


def test_corpus_round_trips_records(tmp_path):
    corpus = SolveCorpus(str(tmp_path / "corpus.jsonl"))
    record = record_for(final_degree=2, degrees_tried=(1, 2), repair_rounds=1)
    assert corpus.append(record)
    rows = corpus.rows()
    assert len(rows) == 1
    assert rows[0] == record


def test_corpus_reader_skips_garbage_and_foreign_versions(tmp_path):
    path = tmp_path / "corpus.jsonl"
    corpus = SolveCorpus(str(path))
    corpus.append(record_for())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("{not json\n")
        handle.write(json.dumps({"v": CORPUS_SCHEMA_VERSION + 1, "strategy": "qclp"}) + "\n")
        handle.write('"a bare string"\n')
    corpus.append(record_for(strategy="qclp"))
    rows = corpus.rows()
    assert [row.strategy for row in rows] == ["gauss-newton", "qclp"]


def test_corpus_append_failure_is_counted_not_raised(tmp_path):
    # A directory where the corpus file should be makes every append fail.
    path = tmp_path / "corpus.jsonl"
    path.mkdir()
    corpus = SolveCorpus(str(path))
    assert corpus.append(record_for()) is False
    assert corpus.append_failures == 1
    assert corpus.rows() == []


def test_corpus_concurrent_append_from_two_processes(tmp_path):
    """POSIX O_APPEND single-write rows interleave whole lines, never bytes."""
    path = str(tmp_path / "corpus.jsonl")
    script = """
import sys
from repro.schedule import SolveCorpus, SolveRecord, RequestFeatures
corpus = SolveCorpus(sys.argv[1])
for index in range(50):
    features = RequestFeatures(program_sha=sys.argv[2], reduction_sha=sys.argv[2])
    record = SolveRecord(features=features, strategy="qclp", feasible=True,
                         solve_seconds=float(index))
    assert corpus.append(record)
"""
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    workers = [
        subprocess.Popen([sys.executable, "-c", script, path, tag], env=env)
        for tag in ("aaaa", "bbbb")
    ]
    for worker in workers:
        assert worker.wait(timeout=60) == 0
    rows = SolveCorpus(path).rows()
    assert len(rows) == 100  # every row parsed: no torn/interleaved lines
    by_writer = {tag: [r for r in rows if r.features.program_sha == tag] for tag in ("aaaa", "bbbb")}
    assert all(len(rows_) == 50 for rows_ in by_writer.values())


def test_corpus_rows_sees_foreign_appends_after_size_change(tmp_path):
    path = str(tmp_path / "corpus.jsonl")
    reader, writer = SolveCorpus(path), SolveCorpus(path)
    writer.append(record_for())
    assert len(reader.rows()) == 1
    writer.append(record_for(strategy="qclp"))
    assert len(reader.rows()) == 2  # size-based cache invalidation


# -- ladder ------------------------------------------------------------------------


def test_ladder_for_appends_skipped_rungs_as_downward_repair():
    assert ladder_for(1, 3) == [1, 2, 3]
    assert ladder_for(2, 3) == [2, 3, 1]
    assert ladder_for(3, 4) == [3, 4, 2, 1]
    # Prediction reorders the attempts but never changes the attempted set.
    assert sorted(ladder_for(2, 4)) == [1, 2, 3, 4]


def test_ladder_for_clamps_out_of_range_predictions():
    assert ladder_for(7, 3) == [3, 2, 1]
    assert ladder_for(0, 3) == [1, 2, 3]


# -- scheduler ---------------------------------------------------------------------


def test_cold_start_degrades_to_the_unscheduled_race(tmp_path):
    """With an empty corpus the plan is exactly the PR 2 race: line-up order,
    no stagger, no predicted rung."""
    scheduler = Scheduler(SolveCorpus(str(tmp_path / "corpus.jsonl")))
    plan = scheduler.plan(features_for(), line_up=LINE_UP)
    assert plan.strategy_order == LINE_UP
    assert not plan.predicted
    assert plan.primary is None
    assert plan.stagger_seconds == 0.0
    assert plan.start_degree is None
    assert plan.source == "cold"


def test_fingerprint_match_predicts_the_recorded_winner(tmp_path):
    corpus = SolveCorpus(str(tmp_path / "corpus.jsonl"))
    for _ in range(3):
        corpus.append(record_for(strategy="qclp", seconds=0.1))
    scheduler = Scheduler(corpus)
    plan = scheduler.plan(features_for(), line_up=LINE_UP)
    assert plan.predicted and plan.primary == "qclp"
    assert plan.strategy_order == ("qclp", "gauss-newton", "alternating")
    assert set(plan.strategy_order) == set(LINE_UP)  # reordered, never pruned
    assert plan.source == "fingerprint"
    assert scheduler.min_stagger <= plan.stagger_seconds <= scheduler.max_stagger
    assert plan.confidence == pytest.approx(1.0)


def test_knn_prediction_without_fingerprint_match(tmp_path):
    corpus = SolveCorpus(str(tmp_path / "corpus.jsonl"))
    near = features_for(program="y := y * 2", pairs=5.0, system_size=44.0)
    corpus.append(record_for(strategy="alternating", features=near))
    scheduler = Scheduler(corpus)
    plan = scheduler.plan(features_for(), line_up=LINE_UP)
    assert plan.predicted and plan.primary == "alternating"
    assert plan.source == "knn"


def test_winners_outside_the_line_up_cannot_lead(tmp_path):
    corpus = SolveCorpus(str(tmp_path / "corpus.jsonl"))
    corpus.append(record_for(strategy="qclp-feasibility"))
    scheduler = Scheduler(corpus)
    plan = scheduler.plan(features_for(), line_up=("gauss-newton",))
    assert plan.primary is None
    assert plan.strategy_order == ("gauss-newton",)


def test_degree_vote_prefers_minimal_feasible_degree(tmp_path):
    corpus = SolveCorpus(str(tmp_path / "corpus.jsonl"))
    corpus.append(record_for(degree=3, final_degree=2, degrees_tried=(1, 2)))
    scheduler = Scheduler(corpus)
    plan = scheduler.plan(features_for(degree=-1.0), line_up=LINE_UP, max_degree=3)
    assert plan.start_degree == 2


def test_degree_vote_is_clamped_to_max_degree(tmp_path):
    corpus = SolveCorpus(str(tmp_path / "corpus.jsonl"))
    corpus.append(record_for(degree=5, final_degree=5))
    scheduler = Scheduler(corpus)
    plan = scheduler.plan(features_for(degree=-1.0), line_up=LINE_UP, max_degree=3)
    assert plan.start_degree == 3


def test_stagger_scales_with_recorded_winner_seconds_and_is_clamped(tmp_path):
    corpus = SolveCorpus(str(tmp_path / "corpus.jsonl"))
    corpus.append(record_for(seconds=0.1))
    scheduler = Scheduler(corpus)
    plan = scheduler.plan(features_for(), line_up=LINE_UP)
    assert plan.stagger_seconds == pytest.approx(0.4, rel=0.01)  # 4x recorded 0.1s
    slow = SolveCorpus(str(tmp_path / "slow.jsonl"))
    slow.append(record_for(seconds=100.0))
    plan = Scheduler(slow).plan(features_for(), line_up=LINE_UP)
    assert plan.stagger_seconds == Scheduler(slow).max_stagger  # pathological row clamped


def test_feature_vector_matches_feature_names():
    features = features_for()
    assert len(features.vector()) == len(FEATURE_NAMES)
    payload = features.to_dict()
    assert RequestFeatures.from_dict(payload) == features
