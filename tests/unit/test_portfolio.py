"""Tests of the Step-4 solver portfolio (repro.solvers.portfolio)."""

import pickle

import pytest

from repro.errors import SynthesisError
from repro.invariants.quadratic_system import QuadraticSystem
from repro.polynomial.parse import parse_polynomial
from repro.solvers.alternating import AlternatingSolver
from repro.solvers.base import SolverOptions
from repro.solvers.portfolio import (
    DEFAULT_PORTFOLIO,
    PortfolioSolver,
    STRATEGIES,
    make_solver,
    strategy_names,
)
from repro.solvers.problem import Deadline, SolveControl, compile_problem
from repro.solvers.qclp import GaussNewtonSolver, PenaltyQCLPSolver


def bilinear_system():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_f_1_0_0 * $t_c0_0_0 - 1"))
    system.add_nonnegative(parse_polynomial("$t_c0_0_0"))
    system.add_nonnegative(parse_polynomial("$s_f_1_0_0"))
    return system


def infeasible_system():
    system = QuadraticSystem()
    system.add_equality(parse_polynomial("$s_a_0_0_0 * $s_a_0_0_0 + 1"))
    return system


# -- registry and factory ----------------------------------------------------------------


def test_default_portfolio_strategies_are_registered():
    assert set(DEFAULT_PORTFOLIO) <= set(STRATEGIES)
    assert set(strategy_names()) == set(STRATEGIES)


def test_make_solver_resolves_strategies():
    assert isinstance(make_solver("qclp"), PenaltyQCLPSolver)
    assert isinstance(make_solver("gauss-newton"), GaussNewtonSolver)
    assert isinstance(make_solver("alternating"), AlternatingSolver)
    feasibility = make_solver("qclp-feasibility")
    assert isinstance(feasibility, PenaltyQCLPSolver) and feasibility.objective_weight == 0.0
    portfolio = make_solver("portfolio", portfolio=("qclp", "alternating"))
    assert isinstance(portfolio, PortfolioSolver)
    assert portfolio.strategies == ("qclp", "alternating")


def test_make_solver_rejects_unknown_strategy():
    with pytest.raises(SynthesisError):
        make_solver("simplex")


def test_portfolio_validates_configuration():
    with pytest.raises(SynthesisError):
        PortfolioSolver(strategies=())
    with pytest.raises(SynthesisError):
        PortfolioSolver(strategies=("qclp", "nope"))
    with pytest.raises(SynthesisError):
        PortfolioSolver(strategies=("qclp", "qclp"))  # outcomes are keyed by name
    with pytest.raises(SynthesisError):
        PortfolioSolver(executor="fibers")


# -- racing ------------------------------------------------------------------------------


@pytest.mark.parametrize("executor", ["sequential", "thread"])
def test_portfolio_solves_bilinear_system(executor):
    solver = PortfolioSolver(SolverOptions(restarts=2, max_iterations=150), executor=executor)
    result = solver.solve(bilinear_system())
    assert result.feasible
    assert result.strategy in STRATEGIES
    product = result.assignment["$s_f_1_0_0"] * result.assignment["$t_c0_0_0"]
    assert product == pytest.approx(1.0, abs=1e-3)
    # Every raced strategy left a wall-clock column.
    for name in solver.strategies:
        assert f"portfolio_{name}_seconds" in result.details
        assert f"portfolio_{name}_feasible" in result.details


def test_portfolio_first_feasible_wins_skips_later_sequential_strategies():
    solver = PortfolioSolver(
        SolverOptions(restarts=2, max_iterations=150),
        strategies=("qclp", "alternating"),
        executor="sequential",
    )
    result = solver.solve(bilinear_system())
    assert result.feasible
    assert result.strategy == "qclp"
    # The remaining strategy was cancelled before it started.
    assert result.details["portfolio_alternating_feasible"] == -1.0


def test_portfolio_reports_infeasible_best_effort():
    solver = PortfolioSolver(
        SolverOptions(restarts=1, max_iterations=60), strategies=("qclp", "gauss-newton")
    )
    result = solver.solve(infeasible_system())
    assert not result.feasible
    assert result.status in ("infeasible-best-effort", "no-progress")


def test_portfolio_trivial_system():
    result = PortfolioSolver().solve(QuadraticSystem())
    assert result.status == "trivial"


def test_portfolio_shares_one_compilation():
    system = bilinear_system()
    problem = compile_problem(system)
    solver = PortfolioSolver(SolverOptions(restarts=1, max_iterations=100))
    result = solver.solve(system)
    assert result.feasible
    assert compile_problem(system) is problem  # memo entry untouched by the race


def test_portfolio_respects_shared_deadline():
    control = SolveControl(deadline=Deadline.after(0.0), tolerance=1e-5)
    solver = PortfolioSolver(SolverOptions(restarts=3, max_iterations=5000), executor="sequential")
    result = solver.solve_compiled(compile_problem(bilinear_system()), control)
    assert result.details.get("timed_out") == 1.0 or result.status == "no-progress"


def test_portfolio_solver_is_picklable():
    solver = PortfolioSolver(SolverOptions(restarts=2), strategies=("qclp", "gauss-newton"))
    clone = pickle.loads(pickle.dumps(solver))
    assert clone.strategies == solver.strategies
    assert clone.solve(bilinear_system()).feasible


# -- warm-start exchange ------------------------------------------------------------------


def test_warm_start_exchange_through_control():
    problem = compile_problem(bilinear_system())
    control = SolveControl(tolerance=1e-5)
    assert control.warm_start() is None
    point = problem.vector({"$s_f_1_0_0": 2.0, "$t_c0_0_0": 0.5})
    control.report(point, violation=0.0, objective=0.0, strategy="qclp")
    warm = control.warm_start()
    assert warm is not None and warm is not point
    assert control.winner == "qclp"
    # A worse report must not displace the best-known point.
    control.report(problem.vector({}), violation=5.0, objective=0.0, strategy="alternating")
    assert control.best_violation == 0.0
    assert control.winner == "qclp"


def test_first_feasible_sets_stop_event():
    control = SolveControl(tolerance=1e-5, stop_on_feasible=True)
    assert not control.should_stop()
    control.report(compile_problem(bilinear_system()).vector({}), violation=2.0, objective=0.0)
    assert not control.should_stop()
    point = compile_problem(bilinear_system()).vector({"$s_f_1_0_0": 2.0, "$t_c0_0_0": 0.5})
    control.report(point, violation=0.0, objective=0.0)
    assert control.should_stop()
