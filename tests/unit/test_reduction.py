"""Unit tests of the staged reduction: fingerprints, StageCache, escalation."""

import pytest

from repro.api.engine import Engine
from repro.api.errors import RequestValidationError
from repro.api.request import SynthesisRequest
from repro.api.response import SynthesisResponse
from repro.errors import SynthesisError
from repro.invariants.putinar import putinar_translate
from repro.invariants.handelman import handelman_translate
from repro.invariants.synthesis import SynthesisOptions, build_task
from repro.invariants.translation import TranslationPool
from repro.pipeline.cache import TaskCache
from repro.pipeline.jobs import SynthesisJob
from repro.reduction import AUTO_DEGREE, EscalationTrace, StageCache, compile_plan
from repro.solvers.base import SolverOptions

SOURCE = """
count(n) {
    i := 0;
    while i <= n do
        i := i + 1
    od;
    return i
}
"""
PRE = {"count": {1: "n >= 0"}}
QUICK_SOLVE = SolverOptions(restarts=1, max_iterations=150, time_limit=20.0)


def job(**option_overrides) -> SynthesisJob:
    option_overrides.setdefault("upsilon", 1)
    return SynthesisJob(
        name="count",
        source=SOURCE,
        precondition=PRE,
        options=SynthesisOptions(**option_overrides),
    )


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


def test_unused_bound_does_not_split_the_reduction_fingerprint():
    """Regression: with bounded=False, ``bound`` must not participate in the key."""
    a = SynthesisOptions(bounded=False, bound=100)
    b = SynthesisOptions(bounded=False, bound=7)
    assert a.reduction_fingerprint() == b.reduction_fingerprint()

    bounded_a = SynthesisOptions(bounded=True, bound=100)
    bounded_b = SynthesisOptions(bounded=True, bound=7)
    assert bounded_a.reduction_fingerprint() != bounded_b.reduction_fingerprint()


def test_unused_bound_shares_the_cached_task():
    cache = TaskCache()
    task_a, hit_a = cache.get_or_build(job(bound=100))
    task_b, hit_b = cache.get_or_build(job(bound=7))
    assert not hit_a and hit_b
    assert task_a is task_b


def test_handelman_fingerprint_ignores_upsilon_and_sos_at_stage_level():
    plan_a = compile_plan(SOURCE, PRE, None, SynthesisOptions(translation="handelman", upsilon=1))
    plan_b = compile_plan(SOURCE, PRE, None, SynthesisOptions(translation="handelman", upsilon=2, encode_sos=False))
    assert plan_a.translation_key == plan_b.translation_key


def test_degree_auto_cannot_be_compiled_into_a_plan():
    with pytest.raises(SynthesisError):
        compile_plan(SOURCE, PRE, None, SynthesisOptions(degree="auto"))


def test_options_validate_degree_and_max_degree():
    with pytest.raises(SynthesisError):
        SynthesisOptions(degree=0)
    with pytest.raises(SynthesisError):
        SynthesisOptions(degree="cubic")
    with pytest.raises(SynthesisError):
        SynthesisOptions(max_degree=0)
    assert SynthesisOptions(degree=AUTO_DEGREE, max_degree=4).escalation_degrees() == [1, 2, 3, 4]


# ---------------------------------------------------------------------------
# Stage-level sharing
# ---------------------------------------------------------------------------


def test_degree_sweep_reuses_program_level_stages():
    cache = TaskCache()
    _, _, first = cache.get_or_build_with_report(job(degree=1))
    _, _, second = cache.get_or_build_with_report(job(degree=2))
    by_name = {stage.name: stage.from_cache for stage in second.stages}
    assert not any(stage.from_cache for stage in first.stages)
    assert by_name == {
        "frontend": True,
        "preconditions": True,
        "templates": False,
        "pairs": False,
        "translation": False,
    }


def test_upsilon_sweep_reuses_everything_up_to_translation():
    cache = TaskCache()
    cache.get_or_build(job(upsilon=1))
    _, from_cache, report = cache.get_or_build_with_report(job(upsilon=2))
    assert not from_cache
    by_name = {stage.name: stage.from_cache for stage in report.stages}
    assert by_name == {
        "frontend": True,
        "preconditions": True,
        "templates": True,
        "pairs": True,
        "translation": False,
    }


def test_whole_task_hit_returns_the_same_task_object_and_full_cache_report():
    cache = TaskCache()
    task_a, hit_a, _ = cache.get_or_build_with_report(job())
    task_b, hit_b, report = cache.get_or_build_with_report(job())
    assert not hit_a and hit_b
    assert task_a is task_b
    assert report.task_from_cache
    assert report.timings()["stages_from_cache"] == 5.0


def test_objective_sweep_shares_the_translation_stage():
    from repro.spec.objectives import LinearCoefficientObjective

    cache = TaskCache()
    base = job()
    cache.get_or_build(base)
    entry_name = build_task(SOURCE, PRE, None, base.options).templates.coefficient_names()[0]
    with_objective = SynthesisJob(
        name="count",
        source=SOURCE,
        precondition=PRE,
        objective=LinearCoefficientObjective(weights={entry_name: 1.0}),
        options=base.options,
    )
    _, from_cache, report = cache.get_or_build_with_report(with_objective)
    assert not from_cache  # different task key (objective participates)
    assert all(stage.from_cache for stage in report.stages)  # ... but every stage reused


def test_task_cache_stats_surface_stage_counters():
    cache = TaskCache()
    cache.get_or_build(job(degree=1))
    cache.get_or_build(job(degree=2))
    stats = cache.stats()
    assert stats["misses"] == 2.0
    assert stats["stage_frontend_hits"] == 1.0
    assert stats["stage_translation_misses"] == 2.0
    assert stats["stage_hits"] == 2.0


def test_stage_cache_eviction_is_bounded_per_stage():
    cache = StageCache(max_entries=2)
    for index in range(4):
        cache.get_or_build("frontend", (index,), lambda index=index: index)
    assert len(cache) == 2
    # Evicted keys rebuild; retained keys hit.
    _, hit, _ = cache.get_or_build("frontend", (3,), lambda: 3)
    assert hit
    _, hit, _ = cache.get_or_build("frontend", (0,), lambda: 0)
    assert not hit


# ---------------------------------------------------------------------------
# Parallel translation
# ---------------------------------------------------------------------------


def _constraint_snapshot(system):
    return [(c.kind, c.origin, str(c.polynomial)) for c in system.constraints]


def test_parallel_putinar_translation_matches_sequential():
    task = build_task(SOURCE, PRE, options=SynthesisOptions(upsilon=1))
    sequential = putinar_translate(task.pairs, upsilon=1)
    with TranslationPool(workers=2, min_terms=0) as pool:
        parallel = putinar_translate(task.pairs, upsilon=1, pool=pool)
    assert _constraint_snapshot(parallel) == _constraint_snapshot(sequential)
    assert parallel.translation_profile.mode == "vectorized-parallel"


def test_parallel_handelman_translation_matches_sequential():
    task = build_task(SOURCE, PRE, options=SynthesisOptions(upsilon=1))
    sequential = handelman_translate(task.pairs)
    with TranslationPool(workers=2, min_terms=0) as pool:
        parallel = handelman_translate(task.pairs, pool=pool)
    assert _constraint_snapshot(parallel) == _constraint_snapshot(sequential)


def test_engine_with_translation_workers_reduces_identically():
    request = SynthesisRequest(
        program=SOURCE, mode="weak", precondition=PRE,
        options=SynthesisOptions(upsilon=1), solver_options=QUICK_SOLVE,
    )
    with Engine() as sequential, Engine(translation_workers=2) as pooled:
        a = sequential.synthesize(request)
        b = pooled.synthesize(request)
    assert a.ok and b.ok
    assert a.system_size == b.system_size
    assert a == b  # fingerprint equality


def test_engine_auto_translation_workers_reduces_identically():
    request = SynthesisRequest(
        program=SOURCE, mode="weak", precondition=PRE,
        options=SynthesisOptions(upsilon=1), solver_options=QUICK_SOLVE,
    )
    with Engine() as sequential, Engine(translation_workers="auto") as auto:
        a = sequential.synthesize(request)
        b = auto.synthesize(request)
    assert a.ok and b.ok
    assert a.system_size == b.system_size


def test_engine_rejects_bad_translation_workers():
    with pytest.raises(ValueError):
        Engine(translation_workers=-1)
    with pytest.raises(ValueError):
        Engine(translation_workers="both")


def test_translation_sub_timings_reach_response_and_stats():
    request = SynthesisRequest(
        program=SOURCE, mode="weak", precondition=PRE,
        options=SynthesisOptions(upsilon=1), solver_options=QUICK_SOLVE,
    )
    with Engine() as engine:
        response = engine.synthesize(request)
        stats = engine.stats()
    assert response.ok
    for phase in ("compile", "fanout", "assemble"):
        assert f"stage_translation_{phase}_seconds" in response.timings
        assert stats[f"translation_{phase}_seconds"] >= 0.0
    split = sum(
        response.timings[f"stage_translation_{phase}_seconds"]
        for phase in ("compile", "fanout", "assemble")
    )
    assert split <= response.timings["stage_translation_seconds"] + 1e-6


def test_merge_pair_systems_propagates_worker_failure():
    from concurrent.futures import Future

    from repro.invariants.quadratic_system import QuadraticSystem, merge_pair_systems
    from repro.polynomial.polynomial import Polynomial

    class InlineExecutor:
        def submit(self, fn, *args):
            future = Future()
            try:
                future.set_result(fn(*args))
            except Exception as exc:  # noqa: BLE001 - mirror executor semantics
                future.set_exception(exc)
            return future

    def worker(pair, index):
        if index == 1:
            raise RuntimeError("worker died")
        part = QuadraticSystem()
        part.add_nonnegative(Polynomial.variable("$t_ok"), origin=f"pair{index}")
        return part

    target = QuadraticSystem()
    with pytest.raises(RuntimeError, match="worker died"):
        merge_pair_systems(target, ["a", "b"], InlineExecutor(), worker)
    # The original exception surfaces and no partial merge is left behind.
    assert target.constraints == [] and target.provenance == []


# ---------------------------------------------------------------------------
# Adaptive degree escalation
# ---------------------------------------------------------------------------


def test_degree_auto_returns_minimal_feasible_degree():
    request = SynthesisRequest(
        program=SOURCE, mode="weak", precondition=PRE,
        options=SynthesisOptions(degree="auto", upsilon=1),
        solver_options=QUICK_SOLVE,
    )
    with Engine() as engine:
        response = engine.synthesize(request)
    assert response.status == "ok"
    trace = EscalationTrace.from_dict(response.escalation)
    assert trace.final_degree == 1
    assert trace.degrees_tried == [1]
    assert response.task is not None and response.task.options.degree == 1
    assert response.timings["escalation_attempts"] == 1.0


def test_degree_auto_escalates_past_inexpressible_objectives():
    """A quadratic target forces d=1 to fail and d=2 to win (running example shape)."""
    from repro.suite.registry import get_benchmark

    benchmark = get_benchmark("sum")
    request = SynthesisRequest(
        program=benchmark.source, mode="weak", precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=benchmark.options(upsilon=1, degree="auto"),
        solver_options=QUICK_SOLVE,
    )
    with Engine() as engine:
        response = engine.synthesize(request)
    assert response.status == "ok"
    trace = EscalationTrace.from_dict(response.escalation)
    assert trace.final_degree == 2
    assert [attempt.degree for attempt in trace.attempts] == [1, 2]
    assert trace.attempts[0].status == "error"
    assert "degree-1 template" in (trace.attempts[0].error or "")


def test_escalation_shares_stages_between_rungs():
    request = SynthesisRequest(
        program=SOURCE, mode="weak", precondition=PRE,
        options=SynthesisOptions(degree="auto", max_degree=2, upsilon=1),
        solver_options=QUICK_SOLVE,
    )
    with Engine() as engine:
        engine.synthesize(request)
        stats = engine.stats()
    # d=1 succeeds immediately, so one rung ran; its frontend/preconditions
    # stages were fresh.  Re-running the ladder hits everything.
    with Engine() as engine:
        first = engine.synthesize(request)
        second = engine.synthesize(request)
        stats = engine.stats()
    assert first == second
    assert stats["stage_frontend_misses"] == 1.0
    assert stats["hits"] >= 1.0  # the re-run's rung was a whole-task hit


def test_escalation_respects_the_deadline():
    request = SynthesisRequest(
        program=SOURCE, mode="weak", precondition=PRE,
        options=SynthesisOptions(degree="auto", max_degree=3, upsilon=1),
        solver_options=QUICK_SOLVE,
        deadline=1e-9 + 0.011,  # enough to start rung 1, never rung 2+
    )
    with Engine() as engine:
        response = engine.synthesize(request)
    trace = EscalationTrace.from_dict(response.escalation)
    # Whatever rung 1 managed, the ladder never exceeds the deadline by a rung.
    assert len(trace.attempts) <= 3
    if trace.exhausted_deadline:
        assert trace.attempts[-1].status == "deadline-skipped"


def test_pipeline_survives_auto_degree_job_in_reduce_only_batch():
    """An invalid per-job request becomes an error outcome, not a batch abort."""
    from repro.pipeline import SynthesisPipeline

    bad = job(degree="auto")
    good = job(degree=1)
    with SynthesisPipeline() as pipeline:
        outcomes = pipeline.run([bad, good], solve=False)
    assert len(outcomes) == 2
    assert not outcomes[0].ok and "RequestValidationError" in (outcomes[0].error or "")
    assert outcomes[1].ok and outcomes[1].task is not None


def test_escalation_keeps_stage_timings_on_the_winning_rung():
    request = SynthesisRequest(
        program=SOURCE, mode="weak", precondition=PRE,
        options=SynthesisOptions(degree="auto", upsilon=1),
        solver_options=QUICK_SOLVE,
    )
    with Engine() as engine:
        engine.synthesize(request)
        warm = engine.synthesize(request)
    assert warm.timings["stages_from_cache"] == 5.0  # winning rung fully cached
    assert warm.timings["escalation_attempts"] == 1.0


def test_reduce_only_rejects_auto_degree():
    with pytest.raises(RequestValidationError) as excinfo:
        SynthesisRequest(
            program=SOURCE, mode="weak", precondition=PRE,
            options=SynthesisOptions(degree="auto"), reduce_only=True,
        )
    assert any(error["field"] == "options.degree" for error in excinfo.value.errors)


def test_escalation_trace_round_trips_through_response_json():
    request = SynthesisRequest(
        program=SOURCE, mode="weak", precondition=PRE,
        options=SynthesisOptions(degree="auto", upsilon=1),
        solver_options=QUICK_SOLVE,
    )
    with Engine() as engine:
        response = engine.synthesize(request)
    decoded = SynthesisResponse.from_json(response.to_json())
    assert decoded == response
    assert decoded.escalation == response.escalation
    assert EscalationTrace.from_dict(decoded.escalation).final_degree == 1


def test_strong_mode_supports_auto_degree():
    request = SynthesisRequest(
        program=SOURCE, mode="strong", precondition=PRE,
        options=SynthesisOptions(degree="auto", max_degree=2, upsilon=1),
        solver_options=SolverOptions(restarts=2, max_iterations=120, time_limit=20.0),
    )
    with Engine() as engine:
        response = engine.synthesize(request)
    assert response.ok
    assert response.escalation is not None
