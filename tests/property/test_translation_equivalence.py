"""The vectorised Step-3 kernel is an exact drop-in for the symbolic translator.

:mod:`repro.invariants.translation` rebuilds the Putinar and Handelman
translations as flat numpy index kernels; this file is the oracle pinning it
to the per-``Polynomial`` reference loop (``kernel="symbolic"``): same
constraints in the same order, same origins, same unknown-variable order,
same provenance, same objective — and the shared-memory fan-out must be
bit-identical to the sequential kernel.  Hypothesis drives the translation
knobs; the constraint pairs are derived once per program and reused so each
example stays in the milliseconds.
"""

from functools import lru_cache

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.invariants.handelman import handelman_translate
from repro.invariants.putinar import putinar_translate
from repro.invariants.synthesis import SynthesisOptions, build_task
from repro.invariants.translation import TranslationPool

LOOP_SOURCE = """
count(n) {
    i := 0;
    while i <= n do
        i := i + 1
    od;
    return i
}
"""

BRANCH_SOURCE = """
gain(x) {
    y := 0;
    while x >= 1 do
        if * then y := y + x else y := y + 1 fi;
        x := x - 1
    od;
    return y
}
"""

PROGRAMS = {
    "loop": (LOOP_SOURCE, {"count": {1: "n >= 0"}}),
    "branch": (BRANCH_SOURCE, {"gain": {1: "x >= 0"}}),
}


@lru_cache(maxsize=None)
def pairs_for(program: str, degree: int):
    source, precondition = PROGRAMS[program]
    task = build_task(source, precondition, options=SynthesisOptions(degree=degree, upsilon=1))
    return tuple(task.pairs)


def snapshot(system):
    """Everything the rest of the pipeline can observe about a translation."""
    return (
        [(c.kind, c.origin, str(c.polynomial)) for c in system.constraints],
        system.variables(),
        [repr(p) for p in system.provenance],
        str(system.objective),
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program=st.sampled_from(sorted(PROGRAMS)),
    degree=st.integers(min_value=1, max_value=2),
    upsilon=st.integers(min_value=1, max_value=2),
    with_witness=st.booleans(),
    encode_sos=st.booleans(),
)
def test_vectorized_putinar_matches_symbolic(program, degree, upsilon, with_witness, encode_sos):
    pairs = pairs_for(program, degree)
    symbolic = putinar_translate(
        pairs, upsilon=upsilon, with_witness=with_witness, encode_sos=encode_sos,
        kernel="symbolic",
    )
    vectorized = putinar_translate(
        pairs, upsilon=upsilon, with_witness=with_witness, encode_sos=encode_sos,
    )
    assert snapshot(vectorized) == snapshot(symbolic)
    assert vectorized.translation_profile.mode == "vectorized"


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    program=st.sampled_from(sorted(PROGRAMS)),
    degree=st.integers(min_value=1, max_value=2),
    max_factors=st.integers(min_value=1, max_value=2),
    with_witness=st.booleans(),
)
def test_vectorized_handelman_matches_symbolic(program, degree, max_factors, with_witness):
    pairs = pairs_for(program, degree)
    symbolic = handelman_translate(
        pairs, max_factors=max_factors, with_witness=with_witness, kernel="symbolic"
    )
    vectorized = handelman_translate(pairs, max_factors=max_factors, with_witness=with_witness)
    assert snapshot(vectorized) == snapshot(symbolic)


def test_parallel_fanout_is_bit_identical_to_sequential():
    """Regression: the shared-memory fan-out merges in pair-index order.

    ``min_terms=0`` forces the pool even for this small system, and two
    workers make a reordering bug observable.
    """
    pairs = pairs_for("branch", 2)
    with TranslationPool(workers=2, min_terms=0) as pool:
        if not pool.available:  # pragma: no cover - platform without shared_memory
            return
        putinar_parallel = putinar_translate(pairs, upsilon=2, pool=pool)
        handelman_parallel = handelman_translate(pairs, pool=pool)
    assert snapshot(putinar_parallel) == snapshot(putinar_translate(pairs, upsilon=2))
    assert snapshot(handelman_parallel) == snapshot(handelman_translate(pairs))
    assert putinar_parallel.translation_profile.mode == "vectorized-parallel"
    assert putinar_parallel.translation_profile.workers == 2
