"""Property tests: the batched kernels agree with the per-point kernels.

The batched Step-4 engines (:mod:`repro.solvers.batched`) rest on two
properties of the ``*_batch`` kernels of
:class:`repro.solvers.problem.CompiledProblem`:

* **per-point agreement** — row ``i`` of every batched kernel equals the
  scalar kernel applied to point ``i`` (up to floating-point reduction
  order), on random quadratic systems and random batches;
* **lockstep row independence** — a member's row is *bit-identical* whether
  it is evaluated alone or inside a wider batch, which is what makes
  ``batch="on"`` and ``batch="rows"`` produce the same winning assignment.

The solver-level corollary is checked too: with the same seed, the three
multi-start solvers return identical fingerprints (assignment, status,
violation) under ``batch="on"`` and ``batch="rows"``.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.invariants.quadratic_system import (
    ConstraintKind,
    QuadraticConstraint,
    QuadraticSystem,
)
from repro.polynomial.monomial import Monomial
from repro.polynomial.polynomial import Polynomial
from repro.solvers.alternating import AlternatingSolver
from repro.solvers.base import SolverOptions
from repro.solvers.problem import CompiledProblem
from repro.solvers.qclp import GaussNewtonSolver, PenaltyQCLPSolver

UNKNOWNS = ["$s_a_0_0_0", "$s_a_0_0_1", "$t_c0_0_0", "$l_f_0_1_1"]

_QUADRATIC_MONOMIALS = [Monomial({})]
_QUADRATIC_MONOMIALS += [Monomial({name: 1}) for name in UNKNOWNS]
_QUADRATIC_MONOMIALS += [Monomial({name: 2}) for name in UNKNOWNS]
_QUADRATIC_MONOMIALS += [
    Monomial({left: 1, right: 1})
    for i, left in enumerate(UNKNOWNS)
    for right in UNKNOWNS[i + 1:]
]

coefficients = st.integers(min_value=-6, max_value=6).map(Fraction) | st.fractions(
    min_value=-3, max_value=3, max_denominator=4
)

polynomials = st.dictionaries(
    st.sampled_from(_QUADRATIC_MONOMIALS), coefficients, min_size=1, max_size=4
).map(Polynomial)

constraints = st.builds(
    QuadraticConstraint,
    polynomial=polynomials,
    kind=st.sampled_from(list(ConstraintKind)),
)


def build_system(constraint_list, objective):
    system = QuadraticSystem()
    for constraint in constraint_list:
        system.add(constraint)
    system.objective = objective
    return system


systems = st.builds(
    build_system, st.lists(constraints, min_size=1, max_size=6), polynomials
)

# Random batches: lists of assignments, lowered to (k, d) rows per system
# with problem.vector (the compiled dimension varies with the system).
assignments = st.fixed_dictionaries(
    {name: st.integers(min_value=-4, max_value=4).map(float) for name in UNKNOWNS}
)
batches = st.lists(assignments, min_size=1, max_size=5)


def _points(problem, assignment_list):
    return np.array([problem.vector(assignment) for assignment in assignment_list])

rhos = st.floats(min_value=0.5, max_value=100.0, allow_nan=False)


@settings(max_examples=100, deadline=None)
@given(systems, batches)
def test_batched_values_and_residuals_match_per_point(system, batch):
    problem = CompiledProblem(system)
    points = _points(problem, batch)
    values = problem.constraint_values_batch(points)
    residuals = problem.residuals_batch(points)
    violations = problem.max_violation_batch(points)
    objectives = problem.objective_value_batch(points)
    for i, point in enumerate(points):
        assert np.allclose(values[i], problem.constraint_values(point), rtol=1e-9, atol=1e-12)
        assert np.allclose(residuals[i], problem.residuals(point), rtol=1e-9, atol=1e-12)
        assert np.isclose(violations[i], problem.max_violation(point), rtol=1e-9, atol=1e-12)
        assert np.isclose(objectives[i], problem.objective_value(point), rtol=1e-9, atol=1e-12)


@settings(max_examples=100, deadline=None)
@given(systems, batches, rhos)
def test_batched_penalty_and_gradients_match_per_point(system, batch, rho):
    problem = CompiledProblem(system)
    points = _points(problem, batch)
    # Per-member rho: distinct multiples exercise the (k,) broadcast path.
    rho_members = rho * (1.0 + np.arange(points.shape[0], dtype=float))
    penalties = problem.penalty_batch(points, rho_members, objective_weight=1.0)
    gradients = problem.penalty_gradient_batch(points, rho_members, objective_weight=1.0)
    objective_gradients = problem.objective_gradient_batch(points)
    for i, point in enumerate(points):
        assert np.isclose(
            penalties[i], problem.penalty(point, rho_members[i], 1.0), rtol=1e-9, atol=1e-9
        )
        assert np.allclose(
            gradients[i],
            problem.penalty_gradient(point, rho_members[i], 1.0),
            rtol=1e-8,
            atol=1e-9,
        )
        assert np.allclose(
            objective_gradients[i], problem.objective_gradient(point), rtol=1e-9, atol=1e-12
        )


@settings(max_examples=100, deadline=None)
@given(systems, batches)
def test_batched_jacobian_matches_per_point_jacobian(system, batch):
    problem = CompiledProblem(system)
    points = _points(problem, batch)
    jacobian = problem.residual_jacobian_batch(points)
    rng = np.random.default_rng(0)
    vectors = rng.standard_normal(points.shape)
    weights = rng.standard_normal((points.shape[0], problem.row_count))
    jv = jacobian.matvec(vectors)
    jtw = jacobian.rmatvec(weights)
    for i, point in enumerate(points):
        scalar = problem.residual_jacobian(point)
        assert np.allclose(jv[i], scalar.dot(vectors[i]), rtol=1e-9, atol=1e-10)
        assert np.allclose(jtw[i], scalar.T.dot(weights[i]), rtol=1e-9, atol=1e-10)


@settings(max_examples=60, deadline=None)
@given(systems, batches, rhos)
def test_lockstep_rows_are_bit_identical_to_wide_batches(system, batch, rho):
    """Row ``i`` of a width-``k`` kernel call equals the same row alone, bitwise."""
    problem = CompiledProblem(system)
    points = _points(problem, batch)
    rho_members = rho * (1.0 + np.arange(points.shape[0], dtype=float))
    values = problem.constraint_values_batch(points)
    residuals = problem.residuals_batch(points)
    penalties = problem.penalty_batch(points, rho_members, objective_weight=1.0)
    gradients = problem.penalty_gradient_batch(points, rho_members, objective_weight=1.0)
    for i in range(points.shape[0]):
        row = points[i : i + 1]
        assert np.array_equal(values[i], problem.constraint_values_batch(row)[0])
        assert np.array_equal(residuals[i], problem.residuals_batch(row)[0])
        assert np.array_equal(
            penalties[i], problem.penalty_batch(row, rho_members[i : i + 1], 1.0)[0]
        )
        assert np.array_equal(
            gradients[i],
            problem.penalty_gradient_batch(row, rho_members[i : i + 1], 1.0)[0],
        )


def _fingerprint(result):
    return (result.assignment, result.status, result.max_violation)


@settings(max_examples=10, deadline=None)
@given(systems, st.integers(min_value=0, max_value=2 ** 16))
def test_same_seed_batched_and_replay_fingerprints_match(system, seed):
    """``batch="on"`` equals the one-member-at-a-time replay, solver by solver."""
    for make in (
        lambda options: PenaltyQCLPSolver(options),
        lambda options: GaussNewtonSolver(options),
        lambda options: AlternatingSolver(options, sweeps=2),
    ):
        fingerprints = []
        for mode in ("on", "rows"):
            options = SolverOptions(
                restarts=3, max_iterations=25, time_limit=None, seed=seed, batch=mode
            )
            fingerprints.append(_fingerprint(make(options).solve(system)))
        assert fingerprints[0] == fingerprints[1]
