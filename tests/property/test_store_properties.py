"""Property tests of the store's miss-and-repair boundary.

Half-written blobs are a fact of life for a crash-interrupted deployment
(pre-rename writers, bit rot, hand edits).  Two layers defend against them:

1. the artifact codecs (``SynthesisResponse.from_json``,
   ``Certificate.from_json``) raise only *structured* validation errors on
   malformed documents — truncations, duplicated keys, junk field values —
   never bare ``KeyError``/``TypeError``;
2. the namespace views catch exactly those and degrade to a cache miss.

These tests fuzz both layers: whatever hypothesis does to a valid document,
``load`` must return an artifact or ``None`` — raising is the one forbidden
outcome.
"""

import json
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RequestValidationError, SynthesisRequest, SynthesisResponse
from repro.certify.certificate import Certificate
from repro.errors import ValidationError
from repro.store import STORE_SCHEMA_VERSION, content_key, open_store
from repro.suite.registry import get_benchmark

SUM = get_benchmark("sum")


def valid_response_text() -> str:
    request = SynthesisRequest(
        program=SUM.source,
        mode="weak",
        precondition=SUM.precondition,
        objective=SUM.objective(),
        options=SUM.options(upsilon=1),
        request_id="sum",
    )
    return SynthesisResponse(
        mode=request.mode,
        status="ok",
        request_id="sum",
        submission_id=3,
        solver_status="optimal",
        strategy="qclp",
        invariants=[{"assertions": [{"function": "sum", "index": 9, "kind": "loop",
                                     "text": "s > 0", "atoms": [{"polynomial": "s", "strict": True}]}],
                     "postconditions": []}],
        assignment={"c_0": 0.5, "c_1": -1.25},
        statistics={"solve_seconds": 0.5},
        timings={"total_seconds": 1.0},
        system_size=12,
        verification={"verified": True, "tier": "exact", "repair_rounds": 0},
    ).to_json()


# A small but fully valid certificate document (Handelman: conclusion equals
# one lambda times the sole assumption, so the identity holds exactly).
VALID_CERTIFICATE = {
    "scheme": "handelman",
    "assignment": {"c_0": "1/2"},
    "pairs": [
        {
            "name": "pair0",
            "target": "inv",
            "scheme": "handelman",
            "assumptions": ["x - 1"],
            "conclusion": "x - 1",
            "witness": None,
            "multipliers": [],
            "lambdas": ["1"],
            "products": [[0]],
        }
    ],
    "denominator": 2,
}

RESPONSE_TEXT = valid_response_text()
CERTIFICATE_TEXT = json.dumps(VALID_CERTIFICATE)

_JUNK = st.one_of(
    st.none(),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
    st.lists(st.integers(), max_size=3),
    st.dictionaries(st.text(max_size=6), st.integers(), max_size=3),
)


def test_the_valid_documents_actually_round_trip():
    assert SynthesisResponse.from_json(RESPONSE_TEXT).success
    certificate = Certificate.from_dict(VALID_CERTIFICATE)
    assert certificate.pairs[0].check() is None


# -- layer 1: codecs raise only structured validation errors -----------------------


@settings(max_examples=120, deadline=None)
@given(cut=st.integers(min_value=0, max_value=len(RESPONSE_TEXT)))
def test_truncated_response_documents_never_raise_bare_errors(cut):
    try:
        response = SynthesisResponse.from_json(RESPONSE_TEXT[:cut])
    except RequestValidationError as exc:
        assert exc.errors  # structured: at least one field named
    else:
        assert response.status in ("ok", "no_invariant", "reduced", "error")


@settings(max_examples=120, deadline=None)
@given(cut=st.integers(min_value=0, max_value=len(CERTIFICATE_TEXT)))
def test_truncated_certificate_documents_never_raise_bare_errors(cut):
    try:
        Certificate.from_json(CERTIFICATE_TEXT[:cut])
    except ValidationError:
        pass


@settings(max_examples=100, deadline=None)
@given(
    key=st.sampled_from(
        ["status", "invariants", "assignment", "timings", "verification", "error", "mode"]
    ),
    value=_JUNK,
)
def test_duplicated_response_keys_never_raise_bare_errors(key, value):
    # JSON objects with duplicated keys parse last-wins: appending a second
    # binding of an existing key is exactly what a partially re-written blob
    # (old document + new tail) looks like.
    duplicated = RESPONSE_TEXT[:-1] + f", {json.dumps(key)}: {json.dumps(value)}}}"
    try:
        SynthesisResponse.from_json(duplicated)
    except RequestValidationError as exc:
        assert exc.errors


@settings(max_examples=100, deadline=None)
@given(
    key=st.sampled_from(["scheme", "assignment", "pairs", "denominator"]),
    value=_JUNK,
)
def test_duplicated_certificate_keys_never_raise_bare_errors(key, value):
    duplicated = CERTIFICATE_TEXT[:-1] + f", {json.dumps(key)}: {json.dumps(value)}}}"
    try:
        Certificate.from_json(duplicated)
    except ValidationError:
        pass


# -- layer 2: the store never lets either escape -----------------------------------


@settings(max_examples=60, deadline=None)
@given(cut=st.integers(min_value=0, max_value=200), data=st.data())
def test_store_load_of_mangled_blobs_is_always_a_miss_or_a_value(cut, data, tmp_path_factory):
    root = tmp_path_factory.mktemp("store")
    store = open_store(root)
    key = content_key("fuzz")

    kind = data.draw(st.sampled_from(["truncated", "duplicated", "binary"]))
    blob_text = json.dumps({"v": STORE_SCHEMA_VERSION, "response": json.loads(RESPONSE_TEXT)})
    if kind == "truncated":
        payload = blob_text[: min(cut * len(blob_text) // 200, len(blob_text))].encode()
    elif kind == "duplicated":
        junk = data.draw(_JUNK)
        payload = (blob_text[:-1] + f', "response": {json.dumps(junk)}}}').encode()
    else:
        payload = bytes(data.draw(st.binary(max_size=64)))

    path = store.blobs.path_for("responses", key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(payload)

    loaded = store.responses.load(key)  # must never raise
    assert loaded is None or isinstance(loaded, SynthesisResponse)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_store_load_of_mangled_certificates_is_always_a_miss_or_a_value(data, tmp_path_factory):
    root = tmp_path_factory.mktemp("store")
    store = open_store(root)
    key = content_key("fuzz-cert")

    blob_text = json.dumps({"v": STORE_SCHEMA_VERSION, "certificate": VALID_CERTIFICATE})
    cut = data.draw(st.integers(min_value=0, max_value=len(blob_text)))
    payload = blob_text[:cut].encode()

    path = store.blobs.path_for("certificates", key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(payload)

    loaded = store.certificates.load(key)  # must never raise
    assert loaded is None or isinstance(loaded, Certificate)
