"""Property tests: tampered certificates never pass the exact check."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.certify import Certificate, check_certificate, lift_solution
from repro.certify.linalg import ldl_decompose
from repro.invariants.synthesis import build_task
from repro.pipeline.jobs import job_from_benchmark
from repro.solvers.base import SolverOptions
from repro.solvers.portfolio import make_solver
from repro.suite.running_example import RUNNING_EXAMPLE


@pytest.fixture(scope="module")
def certified_sum():
    benchmark = RUNNING_EXAMPLE
    job = job_from_benchmark(benchmark, quick=True)
    task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(), job.options)
    solver = make_solver(
        "portfolio", options=SolverOptions(restarts=1, max_iterations=200, time_limit=60.0)
    )
    result = solver.solve(task.system)
    assert result.feasible
    lift = lift_solution(task, result.assignment)
    assert lift.ok, lift.reason
    assert check_certificate(lift.certificate, task=task).ok
    return task, lift.certificate


perturbations = st.fractions(
    min_value=Fraction(-10), max_value=Fraction(10), max_denominator=64
).filter(lambda value: value != 0)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), delta=perturbations)
def test_perturbed_assignment_is_rejected(certified_sum, data, delta):
    """Any nonzero nudge of a template coefficient breaks the task binding."""
    task, certificate = certified_sum
    names = sorted(certificate.assignment)
    name = data.draw(st.sampled_from(names))
    tampered = Certificate(
        scheme=certificate.scheme,
        assignment={**certificate.assignment, name: certificate.assignment[name] + delta},
        pairs=certificate.pairs,
        denominator=certificate.denominator,
    )
    assert not check_certificate(tampered, task=task).ok


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data(), delta=perturbations)
def test_perturbed_witness_polynomials_are_rejected(certified_sum, data, delta):
    """Nudging a conclusion, witness or lambda breaks the polynomial identity."""
    from dataclasses import replace

    task, certificate = certified_sum
    index = data.draw(st.integers(min_value=0, max_value=len(certificate.pairs) - 1))
    pair = certificate.pairs[index]
    field = data.draw(st.sampled_from(["conclusion", "witness"]))
    if field == "witness" and pair.witness is None:
        field = "conclusion"
    if field == "conclusion":
        tampered_pair = replace(pair, conclusion=pair.conclusion + delta)
    else:
        tampered_pair = replace(pair, witness=pair.witness + delta)
    pairs = list(certificate.pairs)
    pairs[index] = tampered_pair
    tampered = Certificate(
        scheme=certificate.scheme,
        assignment=certificate.assignment,
        pairs=tuple(pairs),
        denominator=certificate.denominator,
    )
    assert not check_certificate(tampered, task=task).ok


@settings(max_examples=50, deadline=None)
@given(
    a=st.fractions(min_value=Fraction(-4), max_value=Fraction(4), max_denominator=32),
    b=st.fractions(min_value=Fraction(-4), max_value=Fraction(4), max_denominator=32),
    c=st.fractions(min_value=Fraction(-4), max_value=Fraction(4), max_denominator=32),
)
def test_ldl_agrees_with_the_psd_definition_on_2x2(a, b, c):
    """Exact LDL accepts a symmetric 2x2 iff it is PSD (det/trace criterion)."""
    matrix = [[a, b], [b, c]]
    expected = a >= 0 and c >= 0 and a * c - b * b >= 0
    assert (ldl_decompose(matrix) is not None) == expected
