"""Property tests: the interned fast-path core is observationally equivalent
to the validating constructors.

All internal arithmetic goes through the trusted raw constructors
(``Monomial._from_tuple`` / ``Polynomial._from_validated``).  These tests
check, over random rational polynomials, that the results of add, mul, pow and
substitution are indistinguishable from polynomials rebuilt through the
validating public constructors, and agree with an independent dict-based
reference implementation of the ring operations.
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.polynomial.monomial import Monomial
from repro.polynomial.polynomial import Polynomial

VARIABLES = ["x", "y", "z"]

coefficients = st.integers(min_value=-8, max_value=8).map(Fraction) | st.fractions(
    min_value=-4, max_value=4, max_denominator=6
)

power_maps = st.dictionaries(
    st.sampled_from(VARIABLES), st.integers(min_value=1, max_value=3), max_size=3
)

monomials = power_maps.map(Monomial)

polynomials = st.dictionaries(monomials, coefficients, max_size=5).map(Polynomial)


# -- reference implementation over plain dicts --------------------------------


def to_reference(polynomial: Polynomial) -> dict:
    """A ``{sorted (var, exp) tuple: Fraction}`` view of a polynomial."""
    return {monomial.items: coefficient for monomial, coefficient in polynomial.items()}


def reference_add(left: dict, right: dict) -> dict:
    total = dict(left)
    for key, value in right.items():
        total[key] = total.get(key, Fraction(0)) + value
    return {key: value for key, value in total.items() if value}


def reference_mul(left: dict, right: dict) -> dict:
    product: dict = {}
    for key_a, value_a in left.items():
        for key_b, value_b in right.items():
            merged: dict = {}
            for var, exp in (*key_a, *key_b):
                merged[var] = merged.get(var, 0) + exp
            key = tuple(sorted(merged.items()))
            product[key] = product.get(key, Fraction(0)) + value_a * value_b
    return {key: value for key, value in product.items() if value}


def reference_pow(base: dict, exponent: int) -> dict:
    result = {(): Fraction(1)}
    for _ in range(exponent):
        result = reference_mul(result, base)
    return result


def from_reference(reference: dict) -> Polynomial:
    """Rebuild through the *validating* constructors only."""
    return Polynomial({Monomial(dict(key)): value for key, value in reference.items()})


def assert_equivalent(fast: Polynomial, reference: dict) -> None:
    rebuilt = from_reference(reference)
    assert fast == rebuilt
    assert hash(fast) == hash(rebuilt)
    assert str(fast) == str(rebuilt)
    assert to_reference(fast) == reference
    # Round-tripping the fast-path result through the validating constructor
    # must be the identity observationally.
    assert Polynomial(fast.terms) == fast
    for monomial in fast.monomials():
        revalidated = Monomial(monomial.powers)
        assert revalidated is monomial  # interning: equal implies identical
        assert revalidated.sort_key() == (monomial.degree(), monomial.items)


@settings(max_examples=80, deadline=None)
@given(polynomials, polynomials)
def test_fast_add_equals_validated_add(p, q):
    assert_equivalent(p + q, reference_add(to_reference(p), to_reference(q)))


@settings(max_examples=60, deadline=None)
@given(polynomials, polynomials)
def test_fast_mul_equals_validated_mul(p, q):
    assert_equivalent(p * q, reference_mul(to_reference(p), to_reference(q)))


@settings(max_examples=30, deadline=None)
@given(polynomials, st.integers(min_value=0, max_value=3))
def test_fast_pow_equals_validated_pow(p, exponent):
    assert_equivalent(p**exponent, reference_pow(to_reference(p), exponent))


@settings(max_examples=40, deadline=None)
@given(polynomials, polynomials, st.sampled_from(VARIABLES))
def test_fast_substitution_equals_validated_substitution(p, replacement, variable):
    substituted = p.substitute({variable: replacement})
    replacement_reference = to_reference(replacement)
    total: dict = {}
    for key, coefficient in to_reference(p).items():
        term = {(): coefficient}
        for var, exp in key:
            if var == variable:
                factor = reference_pow(replacement_reference, exp)
            else:
                factor = {((var, exp),): Fraction(1)}
            term = reference_mul(term, factor)
        total = reference_add(total, term)
    assert_equivalent(substituted, total)


@settings(max_examples=80, deadline=None)
@given(power_maps, power_maps)
def test_monomial_interning_is_canonical(a, b):
    left, right = Monomial(a), Monomial(b)
    product = left * right
    revalidated = Monomial(product.powers)
    assert revalidated is product
    assert (left == right) == (left is right)
    merged = dict(a)
    for var, exp in b.items():
        merged[var] = merged.get(var, 0) + exp
    assert product.powers == merged
