"""Property tests: the compiled problem IR matches exact system evaluation.

Every Step-4 solver consumes :class:`repro.solvers.problem.CompiledProblem`
instead of the exact :class:`repro.invariants.quadratic_system.QuadraticSystem`;
these tests check, on random quadratic systems and random assignments, that
the lowered numpy evaluation agrees with the exact polynomial semantics —
constraint values, residual/violation conventions, objective value and the
penalty gradient's finite-difference consistency.
"""

from fractions import Fraction

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.invariants.quadratic_system import (
    ConstraintKind,
    QuadraticConstraint,
    QuadraticSystem,
)
from repro.polynomial.monomial import Monomial
from repro.polynomial.polynomial import Polynomial
from repro.solvers.problem import CompiledProblem

UNKNOWNS = ["$s_a_0_0_0", "$s_a_0_0_1", "$t_c0_0_0", "$l_f_0_1_1"]

# All monomials of total degree <= 2 over the unknowns (the Step-3 systems
# are quadratic by construction).
_QUADRATIC_MONOMIALS = [Monomial({})]
_QUADRATIC_MONOMIALS += [Monomial({name: 1}) for name in UNKNOWNS]
_QUADRATIC_MONOMIALS += [Monomial({name: 2}) for name in UNKNOWNS]
_QUADRATIC_MONOMIALS += [
    Monomial({left: 1, right: 1})
    for i, left in enumerate(UNKNOWNS)
    for right in UNKNOWNS[i + 1:]
]

coefficients = st.integers(min_value=-6, max_value=6).map(Fraction) | st.fractions(
    min_value=-3, max_value=3, max_denominator=4
)

polynomials = st.dictionaries(
    st.sampled_from(_QUADRATIC_MONOMIALS), coefficients, min_size=1, max_size=4
).map(Polynomial)

constraints = st.builds(
    QuadraticConstraint,
    polynomial=polynomials,
    kind=st.sampled_from(list(ConstraintKind)),
)


def build_system(constraint_list, objective):
    system = QuadraticSystem()
    for constraint in constraint_list:
        system.add(constraint)
    system.objective = objective
    return system


systems = st.builds(
    build_system, st.lists(constraints, min_size=1, max_size=6), polynomials
)

assignments = st.fixed_dictionaries(
    {name: st.integers(min_value=-4, max_value=4).map(float) for name in UNKNOWNS}
)


@settings(max_examples=100, deadline=None)
@given(systems, assignments)
def test_constraint_values_match_exact_evaluation(system, assignment):
    problem = CompiledProblem(system)
    point = problem.vector(assignment)
    values = problem.constraint_values(point)
    for value, constraint in zip(values, system.constraints):
        expected = constraint.polynomial.evaluate_float(assignment)
        assert np.isclose(value, expected, rtol=1e-9, atol=1e-12)


@settings(max_examples=100, deadline=None)
@given(systems, assignments)
def test_objective_matches_exact_evaluation(system, assignment):
    problem = CompiledProblem(system)
    point = problem.vector(assignment)
    expected = system.objective.evaluate_float(assignment)
    assert np.isclose(problem.objective_value(point), expected, rtol=1e-9, atol=1e-12)


@settings(max_examples=100, deadline=None)
@given(systems, assignments)
def test_residual_conventions_match_constraint_kinds(system, assignment):
    margin = 1e-4
    problem = CompiledProblem(system, strict_margin=margin)
    point = problem.vector(assignment)
    residuals = problem.residuals(point)
    for residual, constraint in zip(residuals, system.constraints):
        value = constraint.polynomial.evaluate_float(assignment)
        if constraint.kind is ConstraintKind.EQUALITY:
            expected = value
        elif constraint.kind is ConstraintKind.NONNEGATIVE:
            expected = min(value, 0.0)
        else:  # strict: rewritten as value >= strict_margin
            expected = min(value - margin, 0.0)
        assert np.isclose(residual, expected, rtol=1e-9, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(systems, assignments)
def test_max_violation_matches_system_on_nonstrict_constraints(system, assignment):
    nonstrict = QuadraticSystem(
        constraints=[
            constraint
            for constraint in system.constraints
            if constraint.kind is not ConstraintKind.POSITIVE
        ],
        objective=system.objective,
    )
    problem = CompiledProblem(nonstrict)
    point = problem.vector(assignment)
    assert np.isclose(
        problem.max_violation(point), nonstrict.max_violation(assignment), rtol=1e-9, atol=1e-12
    )


@settings(max_examples=40, deadline=None)
@given(systems, assignments)
def test_penalty_gradient_matches_finite_difference(system, assignment):
    problem = CompiledProblem(system)
    if problem.dimension == 0:
        return
    point = problem.vector(assignment) + 0.25  # keep away from kinks of min(., 0)
    analytic = problem.penalty_gradient(point, rho=3.0)
    step = 1e-6
    numeric = np.zeros_like(point)
    for i in range(point.size):
        forward, backward = point.copy(), point.copy()
        forward[i] += step
        backward[i] -= step
        numeric[i] = (problem.penalty(forward, 3.0) - problem.penalty(backward, 3.0)) / (2 * step)
    assert np.allclose(analytic, numeric, rtol=2e-3, atol=2e-3)
