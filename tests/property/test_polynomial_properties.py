"""Property-based tests (hypothesis) for the polynomial substrate."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.polynomial.monomial import Monomial
from repro.polynomial.polynomial import Polynomial

VARIABLES = ["x", "y", "z"]

coefficients = st.integers(min_value=-8, max_value=8).map(Fraction) | st.fractions(
    min_value=-4, max_value=4, max_denominator=6
)

monomials = st.dictionaries(
    st.sampled_from(VARIABLES), st.integers(min_value=1, max_value=3), max_size=3
).map(Monomial)

polynomials = st.dictionaries(monomials, coefficients, max_size=5).map(Polynomial)

valuations = st.fixed_dictionaries(
    {name: st.integers(min_value=-5, max_value=5).map(Fraction) for name in VARIABLES}
)


@settings(max_examples=60, deadline=None)
@given(polynomials, polynomials)
def test_addition_commutes(p, q):
    assert p + q == q + p


@settings(max_examples=60, deadline=None)
@given(polynomials, polynomials, polynomials)
def test_addition_associates(p, q, r):
    assert (p + q) + r == p + (q + r)


@settings(max_examples=60, deadline=None)
@given(polynomials, polynomials)
def test_multiplication_commutes(p, q):
    assert p * q == q * p


@settings(max_examples=40, deadline=None)
@given(polynomials, polynomials, polynomials)
def test_distributivity(p, q, r):
    assert p * (q + r) == p * q + p * r


@settings(max_examples=60, deadline=None)
@given(polynomials)
def test_additive_inverse(p):
    assert (p + (-p)).is_zero()


@settings(max_examples=60, deadline=None)
@given(polynomials)
def test_multiplicative_identity(p):
    assert p * Polynomial.one() == p
    assert (p * Polynomial.zero()).is_zero()


@settings(max_examples=60, deadline=None)
@given(polynomials, polynomials, valuations)
def test_evaluation_is_ring_homomorphism(p, q, valuation):
    assert (p + q).evaluate(valuation) == p.evaluate(valuation) + q.evaluate(valuation)
    assert (p * q).evaluate(valuation) == p.evaluate(valuation) * q.evaluate(valuation)


@settings(max_examples=40, deadline=None)
@given(polynomials, polynomials, valuations)
def test_substitution_commutes_with_evaluation(p, q, valuation):
    """Evaluating p[x := q] equals evaluating p at x := value of q."""
    substituted = p.substitute({"x": q})
    inner = q.evaluate(valuation)
    shifted = dict(valuation)
    shifted["x"] = inner
    assert substituted.evaluate(valuation) == p.evaluate(shifted)


@settings(max_examples=60, deadline=None)
@given(polynomials, st.lists(st.sampled_from(VARIABLES), max_size=3))
def test_collect_reconstructs_polynomial(p, chosen):
    grouped = p.collect(chosen)
    rebuilt = Polynomial.zero()
    for monomial, coefficient in grouped.items():
        rebuilt = rebuilt + Polynomial.from_monomial(monomial) * coefficient
    assert rebuilt == p


@settings(max_examples=60, deadline=None)
@given(polynomials)
def test_degree_of_product(p):
    q = Polynomial.variable("x") + 1
    if p.is_zero():
        assert (p * q).is_zero()
    else:
        assert (p * q).degree() == p.degree() + 1


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(st.sampled_from(VARIABLES), st.integers(min_value=1, max_value=4), max_size=3),
       st.dictionaries(st.sampled_from(VARIABLES), st.integers(min_value=1, max_value=4), max_size=3))
def test_monomial_multiplication_degree_adds(a, b):
    left, right = Monomial(a), Monomial(b)
    assert (left * right).degree() == left.degree() + right.degree()


@settings(max_examples=60, deadline=None)
@given(polynomials, valuations)
def test_partial_derivative_sum_rule(p, valuation):
    q = Polynomial.variable("x") * Polynomial.variable("y")
    assert (p + q).partial_derivative("x") == p.partial_derivative("x") + q.partial_derivative("x")
