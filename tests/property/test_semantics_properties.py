"""Property-based tests for predicates, DNF conversion and the interpreter."""

from hypothesis import given, settings, strategies as st

from repro.cfg.dnf import predicate_holds, to_dnf
from repro.lang.ast_nodes import BinaryPredicate, Comparison, NegatedPredicate
from repro.polynomial.polynomial import Polynomial
from repro.semantics.interpreter import Interpreter
from repro.semantics.scheduler import ScriptedScheduler

VARIABLES = ["x", "y"]


def _polynomials():
    terms = st.dictionaries(
        st.sampled_from(VARIABLES), st.integers(min_value=1, max_value=2), max_size=2
    )
    coefficient = st.integers(min_value=-3, max_value=3)
    return st.tuples(terms, coefficient).map(
        lambda pair: sum(
            (Polynomial.variable(var) ** exp for var, exp in pair[0].items()),
            start=Polynomial.constant(pair[1]),
        )
    )


def _comparisons():
    return st.tuples(_polynomials(), st.sampled_from(["<", "<=", ">=", ">"]), _polynomials()).map(
        lambda triple: Comparison(triple[0], triple[1], triple[2])
    )


def _predicates(depth=2):
    if depth == 0:
        return _comparisons()
    smaller = _predicates(depth - 1)
    return st.one_of(
        _comparisons(),
        smaller.map(lambda p: NegatedPredicate(p)),
        st.tuples(st.sampled_from(["and", "or"]), smaller, smaller).map(
            lambda t: BinaryPredicate(t[0], t[1], t[2])
        ),
    )


_valuations = st.fixed_dictionaries(
    {name: st.integers(min_value=-4, max_value=4).map(float) for name in VARIABLES}
)


@settings(max_examples=80, deadline=None)
@given(_predicates(), _valuations)
def test_dnf_preserves_semantics(predicate, valuation):
    """A predicate and its DNF agree on every valuation (away from strictness boundaries)."""
    assert predicate_holds(predicate, valuation) == predicate.holds(valuation)


@settings(max_examples=80, deadline=None)
@given(_predicates(), _valuations)
def test_negation_dnf_is_complement(predicate, valuation):
    """On integer valuations (no boundary ties for strict/non-strict mixups), the DNF of the
    negation accepts exactly the points the DNF of the predicate rejects, unless the point
    lies exactly on an atom boundary (where both can hold due to relaxation)."""
    direct = predicate_holds(predicate, valuation)
    negated = any(
        all(atom.holds(valuation) for atom in clause) for clause in to_dnf(predicate, negate=True)
    )
    boundary = _touches_boundary(predicate, valuation)
    if not boundary:
        assert direct != negated


def _touches_boundary(predicate, valuation) -> bool:
    if isinstance(predicate, Comparison):
        return (predicate.left - predicate.right).evaluate_float(valuation) == 0
    if isinstance(predicate, NegatedPredicate):
        return _touches_boundary(predicate.operand, valuation)
    return _touches_boundary(predicate.left, valuation) or _touches_boundary(predicate.right, valuation)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=12), st.lists(st.integers(min_value=0, max_value=1), max_size=40))
def test_sum_program_never_exceeds_gauss_bound(sum_cfg, n, choices):
    """Every resolution of the non-determinism keeps the result within [0, n*(n+1)/2]."""
    interpreter = Interpreter(sum_cfg, scheduler=ScriptedScheduler(choices))
    result = interpreter.run({"n": n})
    assert result.completed
    assert 0 <= result.return_value <= n * (n + 1) // 2


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10), st.lists(st.integers(min_value=0, max_value=1), max_size=40))
def test_recursive_sum_matches_chosen_subset(recursive_sum_cfg, n, choices):
    """The recursive program returns exactly the sum of the accepted indices."""
    interpreter = Interpreter(recursive_sum_cfg, scheduler=ScriptedScheduler(choices))
    result = interpreter.run({"n": n})
    assert result.completed
    # The nondeterministic branches execute while the recursion unwinds, so the k-th
    # choice (0-based) decides whether the value k+1 is added (then-branch = add).
    expected = 0
    for offset in range(n):
        value = offset + 1
        take = choices[offset] if offset < len(choices) else 0
        if take == 0:
            expected += value
    assert result.return_value == expected


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=30))
def test_paper_bound_holds_for_running_example(sum_cfg, n):
    """The desired invariant of Example 1: ret_sum < 0.5*n^2 + 0.5*n + 1."""
    interpreter = Interpreter(sum_cfg)
    result = interpreter.run({"n": n})
    assert float(result.return_value) < 0.5 * n * n + 0.5 * n + 1
