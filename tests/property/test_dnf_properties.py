"""Property tests: DNF conversion preserves guard semantics (repro.cfg.dnf).

Step 2 rewrites every branching guard into disjunctive normal form before
constraint-pair generation; any semantic drift there silently corrupts every
downstream constraint.  These tests pit :func:`repro.cfg.dnf.to_dnf` /
:func:`repro.cfg.dnf.predicate_holds` against the AST's own ``holds``
reference semantics on random guard trees and random integer valuations
(integer data keeps float evaluation exact, so strict/non-strict boundaries
are decided identically on both sides).
"""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.cfg.dnf import AtomicInequality, predicate_holds, to_dnf
from repro.lang.ast_nodes import BinaryPredicate, Comparison, NegatedPredicate
from repro.polynomial.monomial import Monomial
from repro.polynomial.polynomial import Polynomial

VARIABLES = ["x", "y"]

coefficients = st.integers(min_value=-4, max_value=4).map(Fraction)

monomials = st.dictionaries(
    st.sampled_from(VARIABLES), st.integers(min_value=1, max_value=2), max_size=2
).map(Monomial)

polynomials = st.dictionaries(monomials, coefficients, max_size=3).map(Polynomial)

comparisons = st.builds(
    Comparison,
    left=polynomials,
    op=st.sampled_from(["<", "<=", ">", ">="]),
    right=polynomials,
)

predicates = st.recursive(
    comparisons,
    lambda children: st.builds(NegatedPredicate, operand=children)
    | st.builds(
        BinaryPredicate,
        op=st.sampled_from(["and", "or"]),
        left=children,
        right=children,
    ),
    max_leaves=6,
)

valuations = st.fixed_dictionaries(
    {name: st.integers(min_value=-5, max_value=5) for name in VARIABLES}
)


@settings(max_examples=120, deadline=None)
@given(predicates, valuations)
def test_dnf_preserves_guard_semantics(predicate, valuation):
    assert predicate_holds(predicate, valuation) == predicate.holds(valuation)


@settings(max_examples=120, deadline=None)
@given(predicates, valuations)
def test_negated_dnf_is_complement(predicate, valuation):
    negated = to_dnf(predicate, negate=True)
    holds_negated = any(all(atom.holds(valuation) for atom in clause) for clause in negated)
    assert holds_negated == (not predicate.holds(valuation))


@settings(max_examples=60, deadline=None)
@given(predicates)
def test_dnf_clauses_are_normalised_atoms(predicate):
    for clause in to_dnf(predicate):
        seen = set()
        for atom in clause:
            assert isinstance(atom, AtomicInequality)
            key = (atom.polynomial, atom.strict)
            assert key not in seen  # clauses are deduplicated
            seen.add(key)


@settings(max_examples=120, deadline=None)
@given(comparisons, valuations)
def test_atom_negation_is_involutive_and_complementary(comparison, valuation):
    atoms = to_dnf(comparison)
    assert len(atoms) == 1 and len(atoms[0]) == 1
    atom = atoms[0][0]
    assert atom.negated().negated() == atom
    assert atom.negated().holds(valuation) == (not atom.holds(valuation))
