"""Property tests of the request JSON codec: malformed input never escapes
as anything but a structured RequestValidationError."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RequestValidationError, SynthesisRequest
from repro.suite.registry import get_benchmark

SUM = get_benchmark("sum")


def valid_payload() -> dict:
    return SynthesisRequest(
        program=SUM.source,
        mode="weak",
        precondition=SUM.precondition,
        objective=SUM.objective(),
        options=SUM.options(upsilon=1),
        request_id="sum",
    ).to_dict()


# Values of the wrong shape for every typed field.
_BAD_VALUES = st.one_of(
    st.integers(),
    st.floats(allow_nan=False),
    st.booleans(),
    st.lists(st.integers(), max_size=3),
    st.text(min_size=1, max_size=8).filter(lambda s: s not in ("weak", "strong", "rec-weak", "rec-strong")),
)

_TYPED_FIELDS = ("mode", "options", "solver_options", "objective", "deadline", "precondition")


@settings(max_examples=60, deadline=None)
@given(field=st.sampled_from(_TYPED_FIELDS), value=_BAD_VALUES)
def test_wrong_typed_fields_raise_structured_validation_errors(field, value):
    payload = valid_payload()
    payload[field] = value
    try:
        request = SynthesisRequest.from_dict(payload)
    except RequestValidationError as exc:
        # Structured: at least one entry names a field, and the message mentions it.
        assert exc.errors and all({"field", "reason"} <= set(entry) for entry in exc.errors)
        assert "invalid synthesis request" in str(exc)
    else:
        # The rare corruption that stays type-correct (e.g. deadline=3) must
        # have produced a well-formed request.
        assert isinstance(request, SynthesisRequest)


@settings(max_examples=40, deadline=None)
@given(junk=st.text(max_size=40))
def test_arbitrary_text_never_raises_anything_but_validation_errors(junk):
    try:
        SynthesisRequest.from_json(junk)
    except RequestValidationError:
        pass  # the only acceptable failure mode


@settings(max_examples=40, deadline=None)
@given(
    payload=st.dictionaries(
        keys=st.text(min_size=1, max_size=12),
        values=st.one_of(st.none(), st.integers(), st.text(max_size=10), st.booleans()),
        max_size=6,
    )
)
def test_arbitrary_json_objects_never_raise_anything_but_validation_errors(payload):
    text = json.dumps(payload)
    try:
        SynthesisRequest.from_json(text)
    except RequestValidationError:
        pass  # the only acceptable failure mode


@settings(max_examples=25, deadline=None)
@given(drop=st.sampled_from(["precondition", "objective", "solver_options", "deadline", "request_id", "reduce_only"]))
def test_optional_fields_can_be_dropped(drop):
    payload = valid_payload()
    del payload[drop]
    request = SynthesisRequest.from_dict(payload)
    clone = SynthesisRequest.from_json(request.to_json())
    assert clone == request
