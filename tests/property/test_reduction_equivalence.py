"""Staged/escalated reductions are semantically identical to the monolithic seed path.

The staged reduction compiler (:mod:`repro.reduction`) must be a pure
refactoring of the seed's monolithic ``build_task``: for every option
combination the two paths must produce the same constraint pairs, the same
``QuadraticSystem`` and — after a deterministic Step-4 solve — the same
``SynthesisResult``/response fingerprint.  Hypothesis drives the option space;
the programs are kept tiny so each reduction stays in the milliseconds.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api.engine import Engine
from repro.api.request import SynthesisRequest
from repro.invariants.synthesis import (
    SynthesisOptions,
    build_task,
    build_task_monolithic,
    result_from_solution,
)
from repro.pipeline.cache import TaskCache
from repro.pipeline.jobs import SynthesisJob
from repro.reduction.plan import compile_plan
from repro.solvers.base import SolverOptions
from repro.solvers.qclp import PenaltyQCLPSolver

LOOP_SOURCE = """
count(n) {
    i := 0;
    while i <= n do
        i := i + 1
    od;
    return i
}
"""

BRANCH_SOURCE = """
gain(x) {
    y := 0;
    while x >= 1 do
        if * then y := y + x else y := y + 1 fi;
        x := x - 1
    od;
    return y
}
"""

PROGRAMS = {
    "loop": (LOOP_SOURCE, {"count": {1: "n >= 0"}}),
    "branch": (BRANCH_SOURCE, {"gain": {1: "x >= 0"}}),
}

options_strategy = st.builds(
    SynthesisOptions,
    degree=st.integers(min_value=1, max_value=2),
    conjuncts=st.integers(min_value=1, max_value=2),
    upsilon=st.integers(min_value=1, max_value=2),
    translation=st.sampled_from(["putinar", "handelman"]),
    add_entry_assumptions=st.booleans(),
    with_witness=st.booleans(),
    encode_sos=st.booleans(),
)


def _system_snapshot(task):
    return (
        [str(constraint) for constraint in task.system.constraints],
        str(task.system.objective),
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=st.sampled_from(sorted(PROGRAMS)), options=options_strategy)
def test_staged_reduction_matches_monolithic(program, options):
    source, precondition = PROGRAMS[program]
    staged = build_task(source, precondition, None, options)
    monolithic = build_task_monolithic(source, precondition, None, options)

    assert [pair.name for pair in staged.pairs] == [pair.name for pair in monolithic.pairs]
    assert staged.templates.coefficient_names() == monolithic.templates.coefficient_names()
    assert _system_snapshot(staged) == _system_snapshot(monolithic)
    # The statistics vocabulary of the seed is preserved.
    for key in ("time_frontend", "time_preconditions", "time_templates",
                "time_constraint_pairs", "time_translation", "constraint_pairs", "system_size"):
        assert key in staged.statistics, key


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=st.sampled_from(sorted(PROGRAMS)), options=options_strategy)
def test_stage_cached_reduction_matches_cold(program, options):
    """A reduction assembled from cached stages equals a cold one."""
    source, precondition = PROGRAMS[program]
    cache = TaskCache()
    # Warm the prefix stages with a *different* suffix configuration first.
    warm_options = SynthesisOptions(
        degree=3 - options.degree if options.degree in (1, 2) else 1,
        conjuncts=options.conjuncts,
        upsilon=options.upsilon,
        translation=options.translation,
        add_entry_assumptions=options.add_entry_assumptions,
        with_witness=options.with_witness,
        encode_sos=options.encode_sos,
    )
    cache.get_or_build(SynthesisJob(name="warm", source=source, precondition=precondition, options=warm_options))
    task, from_cache = cache.get_or_build(
        SynthesisJob(name="cold", source=source, precondition=precondition, options=options)
    )
    assert not from_cache  # different degree: a whole-task miss, stages partially reused
    assert _system_snapshot(task) == _system_snapshot(build_task_monolithic(source, precondition, None, options))


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(program=st.sampled_from(sorted(PROGRAMS)), upsilon=st.integers(min_value=1, max_value=2))
def test_fixed_degree_result_fingerprint_matches_seed_path(program, upsilon):
    """Engine (staged, cached) and seed (monolithic task) solves agree exactly.

    The solver is deterministic (fixed seed, no time limit), so identical
    quadratic systems must yield identical assignments, hence identical
    response/result fingerprints.
    """
    source, precondition = PROGRAMS[program]
    options = SynthesisOptions(degree=1, upsilon=upsilon)
    solver_options = SolverOptions(restarts=1, max_iterations=120, time_limit=None, seed=0)

    monolithic_task = build_task_monolithic(source, precondition, None, options)
    seed_result = result_from_solution(
        monolithic_task, PenaltyQCLPSolver(solver_options).solve(monolithic_task.system)
    )

    request = SynthesisRequest(
        program=source,
        mode="weak",
        precondition=precondition,
        options=options,
        solver_options=solver_options,
    )
    with Engine() as engine:
        engine.synthesize(request)          # cold: populates the stage cache
        response = engine.synthesize(request)  # warm: assembled from cached stages
    assert response.ok
    assert response.result is not None
    assert response.result.solver_status == seed_result.solver_status
    if seed_result.assignment is None:
        assert response.result.assignment is None
    else:
        assert response.result.assignment == dict(seed_result.assignment)
    assert [inv.pretty() for inv in response.result.invariants] == [
        inv.pretty() for inv in seed_result.invariants
    ]


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(options=options_strategy)
def test_escalated_rung_system_equals_fixed_degree_system(options):
    """Each rung of the degree ladder reduces exactly like the fixed-degree request."""
    source, precondition = PROGRAMS["loop"]
    for degree in SynthesisOptions(degree="auto", max_degree=2).escalation_degrees():
        rung = SynthesisOptions(
            degree=degree,
            conjuncts=options.conjuncts,
            upsilon=options.upsilon,
            translation=options.translation,
            add_entry_assumptions=options.add_entry_assumptions,
            with_witness=options.with_witness,
            encode_sos=options.encode_sos,
        )
        staged, _ = compile_plan(source, precondition, None, rung).execute()
        assert _system_snapshot(staged) == _system_snapshot(
            build_task_monolithic(source, precondition, None, rung)
        )
