"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a fresh checkout without installing the package.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.cfg.builder import build_cfg  # noqa: E402
from repro.lang.parser import parse_program  # noqa: E402
from repro.spec.preconditions import Precondition  # noqa: E402
from repro.suite.running_example import SUM_SOURCE  # noqa: E402


@pytest.fixture(scope="session")
def sum_source() -> str:
    """Source text of the paper's running example (Figure 2)."""
    return SUM_SOURCE


@pytest.fixture(scope="session")
def sum_program(sum_source):
    """Parsed running example."""
    return parse_program(sum_source)


@pytest.fixture(scope="session")
def sum_cfg(sum_program):
    """CFG of the running example (labels 1..9 as in Figure 3)."""
    return build_cfg(sum_program)


@pytest.fixture(scope="session")
def sum_precondition(sum_cfg):
    """The paper's pre-condition n >= 1 at the entry label of sum."""
    return Precondition.from_spec(sum_cfg, {"sum": {1: "n >= 1"}})


RECURSIVE_SUM_SOURCE = """
recursive_sum(n) {
    if n <= 0 then
        return n
    else
        m := n - 1;
        s := recursive_sum(m);
        if * then
            s := s + n
        else
            skip
        fi;
        return s
    fi
}
"""


@pytest.fixture(scope="session")
def recursive_sum_source() -> str:
    """Source text of the recursive summation program (Figure 4)."""
    return RECURSIVE_SUM_SOURCE


@pytest.fixture(scope="session")
def recursive_sum_cfg(recursive_sum_source):
    """CFG of the recursive summation program."""
    return build_cfg(parse_program(recursive_sum_source))
