"""Acceptance: degree="auto" finds the minimal-degree feasible invariant.

The running example needs a quadratic template (its target invariant has an
``n_init^2`` monomial, so d=1 cannot even express the objective); several
suite programs already succeed with a linear template.  In both cases the
escalation ladder must stop at exactly that minimal degree and report the
full trace on the envelope.
"""

import pytest

from repro.api.engine import Engine
from repro.api.request import SynthesisRequest
from repro.reduction import EscalationTrace
from repro.solvers.base import SolverOptions
from repro.suite.registry import get_benchmark

BUDGET = SolverOptions(restarts=1, max_iterations=200, time_limit=30.0)


@pytest.mark.parametrize(
    "name, minimal_degree",
    [
        ("sum", 2),        # the running example (Figure 2 / Example 9)
        ("freire1", 1),    # suite: linear template suffices
        ("cohendiv", 1),   # suite: linear template suffices
    ],
)
def test_auto_degree_finds_the_minimal_feasible_degree(name, minimal_degree):
    benchmark = get_benchmark(name)
    request = SynthesisRequest(
        program=benchmark.source,
        mode="weak",
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=benchmark.options(upsilon=1, degree="auto"),
        solver_options=BUDGET,
        request_id=name,
    )
    with Engine() as engine:
        response = engine.synthesize(request)
    assert response.status == "ok"
    trace = EscalationTrace.from_dict(response.escalation)
    assert trace.final_degree == minimal_degree
    # Minimality: every earlier rung of the ladder failed to produce an invariant.
    assert [attempt.degree for attempt in trace.attempts] == list(range(1, minimal_degree + 1))
    assert all(attempt.status != "ok" for attempt in trace.attempts[:-1])
    # The winning task really is a degree-d* reduction.
    assert response.task is not None and response.task.options.degree == minimal_degree
