"""Integration tests of the corpus-driven scheduler threaded through the Engine.

The scenarios here are the PR's safety and persistence contract: the corpus
outlives the engine that wrote it, predictions come from rows a *previous*
engine recorded, and a forced misprediction still ends in a verified
certificate — scheduling reorders work, it never changes what is accepted.
"""

import dataclasses

import pytest

from repro.api import Engine, SynthesisRequest
from repro.schedule import SolveCorpus, SolveRecord
from repro.solvers.base import SolverOptions
from repro.suite.registry import get_benchmark

QUICK_SOLVE = SolverOptions(restarts=1, max_iterations=60)


def request_for(name: str = "sum", *, verify: str = "none", **option_overrides) -> SynthesisRequest:
    benchmark = get_benchmark(name)
    options = dataclasses.replace(
        benchmark.options(upsilon=1), strategy="portfolio", verify=verify, **option_overrides
    )
    return SynthesisRequest(
        program=benchmark.source,
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=options,
        request_id=name,
    )


def corpus_path(tmp_path) -> str:
    return str(tmp_path / "corpus.jsonl")


# -- recording ---------------------------------------------------------------------


def test_record_only_appends_rows_without_changing_the_race(tmp_path):
    path = corpus_path(tmp_path)
    with Engine(solver_options=QUICK_SOLVE, scheduler="record-only", corpus=path) as engine:
        response = engine.synthesize(request_for())
        assert response.status == "ok"
        # record-only never predicts: no schedule_* timing fields appear.
        assert not any(key.startswith("schedule_") for key in response.timings)
        stats = engine.stats()
    assert stats["schedule_rows_recorded"] == 1
    assert stats["schedule_predictions"] == 0
    rows = SolveCorpus(path).rows()
    assert len(rows) == 1
    assert rows[0].feasible and rows[0].strategy
    # Loser/cancelled strategies appear in the per-strategy timing map too.
    assert set(rows[0].strategy_seconds) == {"gauss-newton", "qclp", "alternating"}


def test_shared_solves_are_recorded_once(tmp_path):
    path = corpus_path(tmp_path)
    with Engine(solver_options=QUICK_SOLVE, scheduler="record-only", corpus=path) as engine:
        first = engine.synthesize(request_for())
        second = engine.synthesize(request_for())
    assert not first.shared_solve and second.shared_solve
    assert len(SolveCorpus(path).rows()) == 1


def test_scheduler_off_engine_never_touches_the_corpus(tmp_path):
    path = corpus_path(tmp_path)
    with Engine(solver_options=QUICK_SOLVE) as engine:
        assert engine.synthesize(request_for()).status == "ok"
    assert SolveCorpus(path).rows() == []


def test_request_override_can_downgrade_but_not_arm_the_scheduler(tmp_path):
    path = corpus_path(tmp_path)
    with Engine(solver_options=QUICK_SOLVE, scheduler="record-only", corpus=path) as engine:
        response = engine.synthesize(
            request_for(scheduler="off"),
        )
        assert response.status == "ok"
    assert SolveCorpus(path).rows() == []  # per-request "off" wins over the engine mode


# -- persistence across restarts ---------------------------------------------------


def test_corpus_survives_engine_restart_and_informs_predictions(tmp_path):
    path = corpus_path(tmp_path)
    with Engine(solver_options=QUICK_SOLVE, scheduler="record-only", corpus=path) as writer:
        recorded = writer.synthesize(request_for())
        assert recorded.status == "ok"
    # A brand-new engine (fresh caches, fresh process state) reads the same
    # corpus file and predicts from the rows the first engine persisted.
    with Engine(solver_options=QUICK_SOLVE, scheduler="on", corpus=path) as reader:
        predicted = reader.synthesize(request_for())
        stats = reader.stats()
    assert predicted.status == "ok"
    assert predicted.timings.get("schedule_predicted") == 1.0
    assert predicted.timings.get("schedule_neighbors", 0) >= 1
    assert stats["schedule_predictions"] == 1
    assert stats["schedule_strategy_hits"] + stats["schedule_strategy_misses"] == 1
    # The winner matched the recorded history on this deterministic instance.
    assert predicted.strategy == recorded.strategy
    assert stats["schedule_strategy_hits"] == 1


def test_cold_corpus_engine_runs_the_plain_race(tmp_path):
    path = corpus_path(tmp_path)
    with Engine(solver_options=QUICK_SOLVE, scheduler="on", corpus=path) as engine:
        response = engine.synthesize(request_for())
        stats = engine.stats()
    assert response.status == "ok"
    assert "schedule_predicted" not in response.timings
    assert stats["schedule_cold_starts"] == 1
    assert stats["schedule_predictions"] == 0


# -- misprediction safety ----------------------------------------------------------


def test_forced_misprediction_still_yields_a_verified_certificate(tmp_path):
    """Poisoned corpus rows reorder the race but cannot corrupt the result."""
    path = corpus_path(tmp_path)
    request = request_for(verify="exact")
    with Engine(solver_options=QUICK_SOLVE, scheduler="on", corpus=path) as engine:
        features = engine._enriched_features(request, None)
        # Claim, wrongly cheaply, that "alternating" always wins instantly.
        corpus = SolveCorpus(path)
        for _ in range(5):
            corpus.append(
                SolveRecord(
                    features=features,
                    strategy="alternating",
                    solver_status="feasible",
                    feasible=True,
                    solve_seconds=0.001,
                    strategy_seconds={"alternating": 0.001},
                    degree=2,
                    verified=True,
                )
            )
        response = engine.synthesize(request)
        stats = engine.stats()
    assert response.timings.get("schedule_predicted") == 1.0
    # Whatever the race ends up choosing, acceptance stays certificate-gated.
    assert response.status == "ok"
    assert response.verification is not None and response.verification["verified"]
    assert response.certificate is not None
    assert stats["schedule_strategy_hits"] + stats["schedule_strategy_misses"] == 1


def test_poisoned_degree_prediction_keeps_auto_requests_correct(tmp_path):
    """A wrong starting rung costs extra rungs, never the invariant."""
    path = corpus_path(tmp_path)
    request = request_for(verify="exact", degree="auto", max_degree=3)
    with Engine(solver_options=QUICK_SOLVE, scheduler="on", corpus=path) as engine:
        features = engine._request_features(request)
        corpus = SolveCorpus(path)
        corpus.append(
            SolveRecord(
                features=features,
                strategy="gauss-newton",
                solver_status="feasible",
                feasible=True,
                solve_seconds=0.01,
                strategy_seconds={"gauss-newton": 0.01},
                degree=3,
                final_degree=3,  # wrong: the instance is feasible at a lower rung
                verified=True,
            )
        )
        response = engine.synthesize(request)
    assert response.status == "ok"
    assert response.verification is not None and response.verification["verified"]
    assert response.timings.get("schedule_start_degree") == 3.0
    attempts = [attempt["degree"] for attempt in response.escalation["attempts"]]
    assert attempts[0] == 3  # started at the predicted rung


def test_auto_degree_prediction_from_a_real_warm_corpus(tmp_path):
    path = corpus_path(tmp_path)
    auto = request_for(degree="auto", max_degree=3)
    with Engine(solver_options=QUICK_SOLVE, scheduler="record-only", corpus=path) as writer:
        cold = writer.synthesize(auto)
    assert cold.status == "ok"
    cold_final = cold.escalation["final_degree"]
    rows = SolveCorpus(path).rows()
    assert rows and rows[-1].final_degree == cold_final
    with Engine(solver_options=QUICK_SOLVE, scheduler="on", corpus=path) as reader:
        warm = reader.synthesize(auto)
        stats = reader.stats()
    assert warm.status == "ok"
    assert warm.escalation["final_degree"] == cold_final
    if cold_final > 1:
        # The warm ladder starts at the recorded minimal feasible rung.
        assert warm.timings.get("schedule_start_degree") == float(cold_final)
        assert stats["schedule_degree_hits"] == 1


def test_unknown_scheduler_mode_is_rejected():
    with pytest.raises(ValueError, match="unknown scheduler"):
        Engine(scheduler="sometimes")
