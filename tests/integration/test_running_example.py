"""Integration tests: the paper's running example through the whole Step 1-3 pipeline."""

import pytest

from repro.invariants.synthesis import SynthesisOptions, build_task
from repro.invariants.template import UNKNOWN_PREFIX
from repro.polynomial.parse import parse_polynomial
from repro.spec.objectives import TargetInvariantObjective

TARGET = "0.5*n_init^2 + 0.5*n_init + 1 - ret_sum"


@pytest.fixture(scope="module")
def running_example_task(sum_source):
    objective = TargetInvariantObjective(
        function="sum", label_index=9, target=parse_polynomial(TARGET)
    )
    return build_task(
        sum_source,
        {"sum": {1: "n >= 1"}},
        objective,
        SynthesisOptions(degree=2, upsilon=2),
    )


def test_pipeline_produces_eleven_constraint_pairs(running_example_task):
    # 10 CFG transitions (single-clause guards) + 1 initiation pair.
    assert len(running_example_task.pairs) == 11


def test_pair_names_cover_every_transition_kind(running_example_task):
    kinds = {pair.name.split(":", 1)[0] for pair in running_example_task.pairs}
    assert kinds == {"init", "step", "guard", "nondet"}


def test_templates_follow_example_6(running_example_task):
    entry = running_example_task.templates.entry_for("sum", 5)
    assert len(entry.monomials) == 21  # Example 6: 21 monomials of degree <= 2 over 5 variables


def test_system_is_purely_quadratic_over_unknowns(running_example_task):
    system = running_example_task.system
    assert system.size > 1000
    for constraint in system:
        assert constraint.polynomial.degree() <= 2
        assert all(name.startswith(UNKNOWN_PREFIX) for name in constraint.polynomial.variables())


def test_system_size_has_the_papers_order_of_magnitude(running_example_task):
    # The paper reports |S| = 1700 for the recursive variant with 3 variables; the
    # non-recursive running example with the same degree lands in the same range.
    assert 1000 <= running_example_task.system.size <= 10000


def test_objective_references_only_label_9_coefficients(running_example_task):
    objective = running_example_task.system.objective
    assert objective.degree() == 2
    assert all("sum_9" in name for name in objective.variables())


def test_statistics_recorded(running_example_task):
    statistics = running_example_task.statistics
    assert statistics["constraint_pairs"] == 11
    assert statistics["system_size"] == running_example_task.system.size
    assert statistics["time_translation"] > 0


def test_appendix_b1_invariant_is_consistent_with_simulation(sum_cfg, sum_precondition):
    """The invariant the paper reports at label 9 (Appendix B.1) survives simulation and
    constraint-pair sampling when combined with the paper's pre-condition."""
    from repro.invariants.checker import check_invariant
    from repro.invariants.result import Invariant
    from repro.spec.assertions import parse_assertion

    function = sum_cfg.function("sum")
    assertions = {label: parse_assertion("true") for label in function.labels}
    assertions[function.label_by_index(9)] = parse_assertion(
        "1 + 0.5*n_init + 0.5*n_init^2 - ret_sum > 0"
    )
    invariant = Invariant(assertions=assertions)
    report = check_invariant(
        sum_cfg,
        sum_precondition,
        invariant,
        argument_sets=[{"n": n} for n in range(1, 10)],
        pair_samples=0,
    )
    assert report.passed
