"""Two engine processes sharing one persistent store root.

The contract under test is the deployment story of :mod:`repro.store`: a
*separate* worker process warms the store, then a fresh engine in *this*
process — no shared memory, no shared caches, only the directory — re-serves
the same request entirely from disk.  ``Engine.stats()`` must show the hits
(``store_response_hits``) and the absence of recompute (no stage misses, no
solve), and the filed certificate must re-load and re-check by fingerprint.
"""

import dataclasses
import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.api import Engine, SynthesisRequest
from repro.certify import check_certificate
from repro.pipeline.jobs import job_from_benchmark
from repro.solvers.base import SolverOptions
from repro.store import open_store
from repro.suite.running_example import RUNNING_EXAMPLE

BENCH_SOLVE = SolverOptions(restarts=1, max_iterations=200, time_limit=60.0)

#: What the warmer subprocess runs: synthesize one certified request against
#: the shared root and report its stats as JSON on stdout.
WARMER = textwrap.dedent(
    """
    import dataclasses, json, sys
    from repro.api import Engine, SynthesisRequest
    from repro.pipeline.jobs import job_from_benchmark
    from repro.solvers.base import SolverOptions
    from repro.suite.running_example import RUNNING_EXAMPLE

    root = sys.argv[1]
    benchmark = RUNNING_EXAMPLE
    job = job_from_benchmark(benchmark, quick=True)
    options = dataclasses.replace(job.options, verify="exact", strategy="portfolio")
    request = SynthesisRequest(
        program=benchmark.source,
        mode="weak",
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=options,
        solver_options=SolverOptions(restarts=1, max_iterations=200, time_limit=60.0),
        request_id="warm",
    )
    with Engine(store=root) as engine:
        response = engine.synthesize(request)
        assert response.status == "ok", response.error
        assert response.verification and response.verification["verified"]
        print(json.dumps({
            "stats": engine.stats(),
            "certificate_sha": response.verification["certificate_sha"],
        }))
    """
)


def exact_request() -> SynthesisRequest:
    job = job_from_benchmark(RUNNING_EXAMPLE, quick=True)
    options = dataclasses.replace(job.options, verify="exact", strategy="portfolio")
    return SynthesisRequest(
        program=RUNNING_EXAMPLE.source,
        mode="weak",
        precondition=RUNNING_EXAMPLE.precondition,
        objective=RUNNING_EXAMPLE.objective(),
        options=options,
        solver_options=BENCH_SOLVE,
        request_id="warm",
    )


@pytest.fixture(scope="module")
def warmed_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("shared-store")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", WARMER, str(root)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    report = json.loads(completed.stdout.strip().splitlines()[-1])
    return root, report


def test_warmer_process_wrote_every_artifact_kind(warmed_root):
    root, report = warmed_root
    stats = report["stats"]
    assert stats["store_response_writes"] == 1.0
    assert stats["store_solve_writes"] >= 1.0
    assert stats["store_certificates_stored"] == 1.0
    store = open_store(root)
    assert store.blobs.count("responses") == 1
    assert store.blobs.count("solves") >= 1
    assert store.blobs.count("certificates") == 1


def test_second_process_is_served_from_disk_without_recompute(warmed_root):
    root, _ = warmed_root
    with Engine(store=root) as engine:
        response = engine.synthesize(exact_request())
        stats = engine.stats()

    assert response.status == "ok"
    assert response.served_from_store and response.from_cache and response.shared_solve
    assert response.verification and response.verification["verified"]
    # The envelope says "every stage cached, nothing solved"...
    assert response.timings["stages_from_cache"] == 5.0
    assert response.timings["reduction_seconds"] == 0.0
    assert response.timings["solve_seconds"] == 0.0
    # ...and the engine's counters agree: one response hit, zero stage
    # activity, zero solves — this process never built a reduction.
    assert stats["store_response_hits"] == 1.0
    assert stats["store_response_misses"] == 0.0
    assert stats["stage_misses"] == 0.0
    assert stats["stage_hits"] == 0.0
    assert stats["store_blob_reads"] == 1.0


def test_filed_certificate_reloads_and_rechecks_by_fingerprint(warmed_root):
    root, report = warmed_root
    store = open_store(root)
    certificate = store.certificates.load(report["certificate_sha"])
    assert certificate is not None
    assert certificate.fingerprint() == report["certificate_sha"]
    check = check_certificate(certificate)
    assert check.ok, check.summary()

    # The re-served envelope names the same certificate.
    with Engine(store=root) as engine:
        response = engine.synthesize(exact_request())
    assert response.verification["certificate_sha"] == report["certificate_sha"]


def test_solve_store_is_shared_across_verification_tiers(warmed_root):
    root, _ = warmed_root
    # Same request at verify="none": the response envelope differs (its key
    # includes the options), so it misses — but the *solve* is re-served.
    job = job_from_benchmark(RUNNING_EXAMPLE, quick=True)
    options = dataclasses.replace(job.options, verify="none", strategy="portfolio")
    request = SynthesisRequest(
        program=RUNNING_EXAMPLE.source,
        mode="weak",
        precondition=RUNNING_EXAMPLE.precondition,
        objective=RUNNING_EXAMPLE.objective(),
        options=options,
        solver_options=BENCH_SOLVE,
        request_id="no-verify",
    )
    with Engine(store=root) as engine:
        response = engine.synthesize(request)
        stats = engine.stats()
    assert response.status == "ok" and not response.served_from_store
    assert response.shared_solve
    assert stats["store_response_misses"] == 1.0
    assert stats["store_solve_hits"] == 1.0
