"""End-to-end weak/strong synthesis on small programs (Step 4 included)."""

import pytest

from repro.invariants.checker import check_invariant
from repro.invariants.synthesis import SynthesisOptions, build_task, strong_inv_synth, weak_inv_synth
from repro.polynomial.parse import parse_polynomial
from repro.solvers.base import SolverOptions
from repro.solvers.qclp import PenaltyQCLPSolver
from repro.solvers.strong import RepresentativeEnumerator
from repro.spec.objectives import TargetInvariantObjective
from repro.spec.preconditions import Precondition

DOUBLE_SOURCE = """
double(x) {
    y := x + x;
    return y
}
"""

DOUBLE_PRE = {"double": {1: "x >= 0"}}


@pytest.fixture(scope="module")
def double_result():
    objective = TargetInvariantObjective(
        function="double", label_index=3, target=parse_polynomial("ret_double - 2*x_init + 1")
    )
    options = SynthesisOptions(degree=1, upsilon=2)
    solver = PenaltyQCLPSolver(SolverOptions(restarts=2, max_iterations=300))
    return weak_inv_synth(DOUBLE_SOURCE, DOUBLE_PRE, objective, options, solver)


def test_weak_synthesis_finds_an_invariant(double_result):
    assert double_result.success, double_result.solver_status
    assert double_result.solver_status == "optimal"


def test_synthesized_invariant_is_nontrivial_and_holds_on_reachable_states(double_result):
    exit_assertion = double_result.invariant.at_index("double", 3)
    polynomial = exit_assertion.atoms[0].polynomial
    # A meaningful exit invariant was synthesized (not the vacuous constant assertion) ...
    assert not polynomial.is_constant()
    assert "ret_double" in polynomial.variables() or "x_init" in polynomial.variables()
    # ... and it holds on every reachable endpoint state (ret = y = 2*x for x >= 0).
    for x_value in range(0, 21):
        state = {
            "x": float(x_value),
            "x_init": float(x_value),
            "y": 2.0 * x_value,
            "ret_double": 2.0 * x_value,
        }
        assert exit_assertion.holds(state)


def test_synthesized_invariant_survives_independent_checking(double_result):
    from repro.cfg.builder import build_cfg
    from repro.lang.parser import parse_program

    cfg = build_cfg(parse_program(DOUBLE_SOURCE))
    precondition = Precondition.from_spec(cfg, DOUBLE_PRE)
    report = check_invariant(
        cfg,
        precondition,
        double_result.invariant,
        argument_sets=[{"x": value} for value in (0, 1, 2, 5, 10, 50)],
        pair_samples=40,
        sample_range=20.0,
    )
    assert report.passed, [str(v) for v in report.violations]


def test_statistics_include_solver_time(double_result):
    assert "time_solver" in double_result.statistics
    assert double_result.statistics["time_solver"] > 0


def test_strong_synthesis_returns_representatives():
    options = SynthesisOptions(degree=1, upsilon=1, with_witness=False)
    enumerator = RepresentativeEnumerator(
        attempts=4, options=SolverOptions(max_iterations=150, seed=2)
    )
    result = strong_inv_synth(DOUBLE_SOURCE, DOUBLE_PRE, options, enumerator)
    assert result.invariants is not None
    assert len(result.invariants) >= 1
    assert "representatives" in result.solver_status


def test_build_task_reuse_between_solvers():
    objective = TargetInvariantObjective(
        function="double", label_index=3, target=parse_polynomial("ret_double + 1")
    )
    options = SynthesisOptions(degree=1, upsilon=1)
    task = build_task(DOUBLE_SOURCE, DOUBLE_PRE, objective, options)
    first = weak_inv_synth(
        DOUBLE_SOURCE, task=task, solver=PenaltyQCLPSolver(SolverOptions(restarts=1, max_iterations=150))
    )
    second = weak_inv_synth(
        DOUBLE_SOURCE, task=task, solver=PenaltyQCLPSolver(SolverOptions(restarts=2, max_iterations=150))
    )
    assert first.system is second.system
