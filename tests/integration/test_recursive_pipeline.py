"""Integration tests for the recursive pipeline (Section 4) on Figure 4's program."""

import pytest

from repro.invariants.synthesis import SynthesisOptions, build_task
from repro.invariants.template import UNKNOWN_PREFIX
from repro.polynomial.parse import parse_polynomial
from repro.spec.objectives import TargetPostconditionObjective
from repro.suite.registry import get_benchmark


@pytest.fixture(scope="module")
def recursive_task(recursive_sum_source):
    objective = TargetPostconditionObjective(
        function="recursive_sum",
        target=parse_polynomial("0.5*n_init^2 + 0.5*n_init + 1 - ret_recursive_sum"),
    )
    return build_task(
        recursive_sum_source,
        {"recursive_sum": {1: "n >= 0"}},
        objective,
        SynthesisOptions(degree=2, upsilon=2),
    )


def test_recursive_templates_include_postcondition(recursive_task):
    assert recursive_task.templates.has_postconditions()
    post = recursive_task.templates.post_entry_for("recursive_sum")
    assert len(post.monomials) == 6  # Example 11


def test_call_constraint_pair_follows_step_2a(recursive_task):
    call_pairs = [pair for pair in recursive_task.pairs if pair.name.startswith("call:")]
    assert len(call_pairs) == 1
    pair = call_pairs[0]
    # Assumptions mention both the post-condition template unknowns (abstracted call)
    # and the invariant template of the source label.
    unknown_names = set()
    for assumption in pair.assumptions:
        unknown_names.update(n for n in assumption.variables() if n.startswith(UNKNOWN_PREFIX))
    assert any("post_recursive_sum" in name for name in unknown_names)
    assert any("recursive_sum_4" in name for name in unknown_names)


def test_postcondition_consecution_pairs_follow_step_2b(recursive_task):
    post_pairs = [pair for pair in recursive_task.pairs if pair.name.startswith("post:")]
    assert post_pairs
    for pair in post_pairs:
        conclusion_unknowns = pair.conclusion.variables()
        assert any("post_recursive_sum" in name for name in conclusion_unknowns)


def test_objective_targets_postcondition_coefficients(recursive_task):
    names = recursive_task.system.objective.variables()
    assert names
    assert all("post_recursive_sum" in name for name in names)


def test_system_size_in_papers_range(recursive_task):
    # Paper reports |S| = 1700 for recursive-sum; the reproduction's encoding is within
    # a small constant factor of that.
    assert 1000 <= recursive_task.system.size <= 12000


def test_suite_benchmark_agrees_with_fixture(recursive_task, recursive_sum_source):
    benchmark = get_benchmark("recursive-sum")
    assert benchmark.cfg().variable_count() == 3
    task = build_task(
        benchmark.source, benchmark.precondition, benchmark.objective(), benchmark.options()
    )
    assert {p.name.split(":", 1)[0] for p in task.pairs} == {
        p.name.split(":", 1)[0] for p in recursive_task.pairs
    }
