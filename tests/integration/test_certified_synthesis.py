"""End-to-end certified synthesis: verify="exact" through the Engine.

Covers the certificate-carrying response contract: the running example and
two recursive suite programs produce certificates that survive the JSON round
trip and re-validate independently, and a deliberately crippled first solve
demonstrably goes through a repair round to a verified result.
"""

import dataclasses

import pytest

from repro.api import Engine, SynthesisRequest, SynthesisResponse
from repro.certify import Certificate, check_certificate
from repro.pipeline.jobs import job_from_benchmark
from repro.solvers.base import SolverOptions
from repro.suite.registry import get_benchmark
from repro.suite.running_example import RUNNING_EXAMPLE

BENCH_SOLVE = SolverOptions(restarts=1, max_iterations=200, time_limit=60.0)


def _exact_request(benchmark, **option_overrides) -> SynthesisRequest:
    job = job_from_benchmark(benchmark, quick=True)
    overrides = {"verify": "exact", "strategy": "portfolio", **option_overrides}
    options = dataclasses.replace(job.options, **overrides)
    return SynthesisRequest(
        program=benchmark.source,
        mode="weak",
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=options,
        solver_options=BENCH_SOLVE,
        request_id=benchmark.name,
    )


@pytest.mark.parametrize(
    "name", ["sum", "recursive-sum", "recursive-square-sum"]
)
def test_exact_verification_round_trip(name):
    benchmark = RUNNING_EXAMPLE if name == "sum" else get_benchmark(name)
    with Engine() as engine:
        response = engine.synthesize(_exact_request(benchmark))
    assert response.status == "ok", response.error
    assert response.verification is not None
    assert response.verification["verified"] is True
    assert response.certificate is not None

    # Extract -> JSON -> re-check: the certificate survives the wire format
    # and re-validates from scratch, bound to the task's proof obligations.
    wire = SynthesisResponse.from_json(response.to_json())
    certificate = Certificate.from_dict(wire.certificate)
    check = check_certificate(certificate, task=response.task)
    assert check.ok, check.summary()
    assert check.pairs_checked == len(response.task.pairs)

    # The reported invariant is the certified one: its coefficients are the
    # exact rational assignment, not the float solver output.
    assert response.invariants


def test_repair_round_reaches_a_verified_result():
    """A deliberately crippled first solve is repaired to a certified one.

    The pure-feasibility Gauss-Newton sprint deterministically lands on a
    boundary solution whose positivity witnesses live inside the float
    slack — exactly the kind of pseudo-solution the exact lift rejects — and
    the repair loop's tightened re-race must then reach a certificate.
    """
    benchmark = get_benchmark("recursive-cube-sum")
    request = _exact_request(benchmark, max_repair_rounds=3, strategy="gauss-newton")
    with Engine() as engine:
        response = engine.synthesize(request)
    assert response.status == "ok", response.error
    verification = response.verification
    assert verification is not None
    assert verification["verified"] is True, verification
    assert verification["repaired"] is True
    assert verification["repair_rounds"] >= 1
    certificate = Certificate.from_dict(response.certificate)
    assert check_certificate(certificate, task=response.task).ok


def test_sample_tier_and_counters():
    benchmark = RUNNING_EXAMPLE
    job = job_from_benchmark(benchmark, quick=True)
    options = dataclasses.replace(job.options, verify="sample", strategy="portfolio")
    request = SynthesisRequest(
        program=benchmark.source,
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=options,
        solver_options=BENCH_SOLVE,
    )
    with Engine() as engine:
        response = engine.synthesize(request)
        stats = engine.stats()
    assert response.status == "ok"
    assert response.verification["mode"] == "sample"
    assert response.verification["verified"] is True
    assert response.certificate is None  # sampling does not issue certificates
    assert stats["verify_requested"] == 1.0
    assert stats["verify_passed"] == 1.0


def test_strong_modes_reject_verification_up_front():
    from repro.api import RequestValidationError

    benchmark = RUNNING_EXAMPLE
    job = job_from_benchmark(benchmark, quick=True)
    options = dataclasses.replace(job.options, verify="exact")
    with pytest.raises(RequestValidationError) as excinfo:
        SynthesisRequest(
            program=benchmark.source,
            mode="strong",
            precondition=benchmark.precondition,
            options=options,
        )
    assert any(error["field"] == "options.verify" for error in excinfo.value.errors)


def test_verify_options_round_trip_through_request_json():
    benchmark = RUNNING_EXAMPLE
    request = _exact_request(benchmark, max_repair_rounds=1, verify_seed=42)
    rebuilt = SynthesisRequest.from_json(request.to_json())
    assert rebuilt.options.verify == "exact"
    assert rebuilt.options.max_repair_rounds == 1
    assert rebuilt.options.verify_seed == 42
    assert rebuilt == request or rebuilt.to_dict() == request.to_dict()
