"""The HTTP front door on a process-backed engine, under concurrent cold load.

The hammer: N distinct programs × M client threads against a server whose
engine ships whole jobs to worker processes.  Every request must come back
correct (its own ``request_id``, an ``ok`` envelope), the engine's
dedup/shared-job counters must account for every request, and a worker
crash mid-job must surface as a structured ``status="error"`` envelope on a
healthy connection — never a hang.
"""

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Engine
from repro.api.workers import FAULT_MARKER_ENV
from repro.server import SynthesisClient, SynthesisServer, serve_in_background
from repro.solvers.base import SolverOptions
from repro.suite.registry import get_benchmark
from repro.api import SynthesisRequest

QUICK_SOLVE = SolverOptions(restarts=1, max_iterations=60)
PROGRAMS = ["sum", "freire1", "cohendiv"]
CLIENTS = 4
ROUNDS = 2  # each program is requested by several distinct request_ids


def document_for(name: str, **overrides) -> dict:
    benchmark = get_benchmark(name)
    fields = dict(
        program=benchmark.source,
        mode="weak",
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=benchmark.options(upsilon=1),
        request_id=name,
    )
    fields.update(overrides)
    return SynthesisRequest(**fields).to_dict()


@pytest.fixture()
def process_server():
    engine = Engine(workers=2, solver_options=QUICK_SOLVE, executor="process")
    server = SynthesisServer(engine)
    try:
        with serve_in_background(server) as handle:
            yield handle, engine
    finally:
        engine.close()


def test_concurrent_cold_hammer_accounts_for_every_request(process_server):
    handle, engine = process_server
    documents = [
        document_for(name, request_id=f"{name}#{round_index}")
        for round_index in range(ROUNDS)
        for name in PROGRAMS
    ]

    def one(document: dict) -> dict:
        return SynthesisClient(handle.url).synthesize(document)

    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        envelopes = list(pool.map(one, documents))

    by_id = {envelope["request_id"]: envelope for envelope in envelopes}
    assert set(by_id) == {doc["request_id"] for doc in documents}
    for envelope in envelopes:
        assert envelope["status"] == "ok", envelope.get("error")
        assert envelope["invariants"]
    # Identical programs under different request_ids are the same content
    # key: the engine either ran them (owner) or shared an in-flight twin's
    # envelope (rider) — and together those account for every request.
    stats = engine.stats()
    assert stats["process_jobs"] + stats["process_jobs_shared"] == float(len(documents))
    assert stats["process_inflight"] == 0.0
    assert stats["process_jobs"] >= float(len(PROGRAMS))  # each program ran at least once
    # Per-program consistency: same semantic payload for every duplicate.
    for name in PROGRAMS:
        payloads = {
            json.dumps(
                {"invariants": e["invariants"], "assignment": e["assignment"]},
                sort_keys=True,
            )
            for rid, e in by_id.items()
            if rid.startswith(f"{name}#")
        }
        assert len(payloads) == 1


def test_worker_crash_over_http_is_structured_error(monkeypatch):
    monkeypatch.setenv(FAULT_MARKER_ENV, "crash-me")
    engine = Engine(workers=2, solver_options=QUICK_SOLVE, executor="process")
    server = SynthesisServer(engine)
    try:
        with serve_in_background(server) as handle:
            client = SynthesisClient(handle.url)
            crashed = client.synthesize(document_for("sum", request_id="crash-me"))
            assert crashed["status"] == "error"
            assert crashed["error"]["type"] == "WorkerCrashed"
            # Connection and server both healthy; the pool rebuilt.
            assert client.healthz() == {"status": "ok"}
            after = client.synthesize(document_for("sum", request_id="survivor"))
            assert after["status"] == "ok"
            stats = client.stats()
            assert stats["process_jobs_failed"] == 1.0
    finally:
        engine.close()
