"""Setuptools shim.

The offline environment this reproduction targets ships setuptools without the
``wheel`` package, so PEP 660 editable installs are unavailable.  Keeping this
shim lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
code path, which works with a bare setuptools.
"""

from setuptools import setup

setup()
