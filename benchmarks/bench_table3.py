"""Table 3 benchmarks: the reduction on the recursive and reinforcement-learning suites."""

from __future__ import annotations

import pytest

from _bench_config import FULL_MODE, benchmark_options
from repro.invariants.synthesis import build_task
from repro.suite.registry import benchmarks_by_category, get_benchmark

QUICK_NAMES = ["recursive-sum", "recursive-square-sum", "pw2", "oscillator"]

NAMES = (
    [
        benchmark.name
        for benchmark in benchmarks_by_category("reinforcement") + benchmarks_by_category("recursive")
    ]
    if FULL_MODE
    else QUICK_NAMES
)


@pytest.mark.parametrize("name", NAMES)
def test_table3_reduction(benchmark, name):
    suite_benchmark = get_benchmark(name)
    options = benchmark_options(suite_benchmark)

    def reduce():
        return build_task(
            suite_benchmark.source,
            suite_benchmark.precondition,
            suite_benchmark.objective(),
            options,
        )

    task = benchmark.pedantic(reduce, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["variables"] = task.cfg.variable_count()
    benchmark.extra_info["constraint_pairs"] = len(task.pairs)
    benchmark.extra_info["system_size"] = task.system.size
    if suite_benchmark.paper is not None:
        benchmark.extra_info["paper_system_size"] = suite_benchmark.paper.system_size
        benchmark.extra_info["paper_runtime_seconds"] = suite_benchmark.paper.runtime_seconds
    assert task.system.size > 0
    if suite_benchmark.category == "recursive":
        assert task.templates.has_postconditions()


def test_table3_running_example_solve(benchmark):
    """End-to-end weak synthesis (Step 4 included) on the smallest end-to-end instance."""
    from repro.invariants.synthesis import SynthesisOptions, weak_inv_synth
    from repro.polynomial.parse import parse_polynomial
    from repro.solvers.base import SolverOptions
    from repro.solvers.qclp import PenaltyQCLPSolver
    from repro.spec.objectives import TargetInvariantObjective

    source = """
    double(x) {
        y := x + x;
        return y
    }
    """
    objective = TargetInvariantObjective(
        function="double", label_index=3, target=parse_polynomial("ret_double - 2*x_init + 1")
    )

    def solve():
        return weak_inv_synth(
            source,
            {"double": {1: "x >= 0"}},
            objective,
            SynthesisOptions(degree=1, upsilon=2),
            PenaltyQCLPSolver(SolverOptions(restarts=1, max_iterations=250)),
        )

    result = benchmark.pedantic(solve, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["status"] = result.solver_status
    benchmark.extra_info["system_size"] = result.system_size
