"""Micro-benchmarks of the substrate components (useful for performance tracking)."""

from __future__ import annotations

from repro.cfg.builder import build_cfg
from repro.invariants.generation import generate_constraint_pairs
from repro.invariants.template import TemplateSet
from repro.lang.parser import parse_program
from repro.polynomial.ordering import monomials_up_to_degree
from repro.polynomial.parse import parse_polynomial
from repro.semantics.interpreter import Interpreter
from repro.semantics.scheduler import RandomScheduler
from repro.spec.preconditions import Precondition, augment_entry_preconditions
from repro.suite.registry import get_benchmark


def test_polynomial_multiplication(benchmark):
    p = parse_polynomial("(x + y + z + 1)^4")
    q = parse_polynomial("(x - y + 2*z - 3)^3")
    result = benchmark(lambda: p * q)
    assert result.degree() == 7


def test_polynomial_substitution(benchmark):
    p = parse_polynomial("(x + y)^5")
    result = benchmark(lambda: p.substitute({"x": parse_polynomial("y*y + 1")}))
    assert result.degree() == 10


def test_monomial_enumeration(benchmark):
    variables = [f"v{i}" for i in range(8)]
    result = benchmark(lambda: monomials_up_to_degree(variables, 3))
    assert len(result) == 165


def test_parse_and_build_cfg(benchmark):
    source = get_benchmark("euclidex2").source

    def frontend():
        return build_cfg(parse_program(source))

    cfg = benchmark(frontend)
    assert cfg.variable_count() == 8


def test_interpreter_throughput(benchmark):
    cfg = get_benchmark("sqrt").cfg()
    interpreter = Interpreter(cfg, scheduler=RandomScheduler(seed=0))

    def run_batch():
        return [interpreter.run({"n": n}).return_value for n in range(0, 40)]

    values = benchmark(run_batch)
    assert values[39] == 6


def test_constraint_pair_generation(benchmark):
    suite_benchmark = get_benchmark("sqrt")
    cfg = suite_benchmark.cfg()
    templates = TemplateSet.build(cfg, degree=2)
    precondition = augment_entry_preconditions(
        cfg, Precondition.from_spec(cfg, suite_benchmark.precondition)
    )

    pairs = benchmark(lambda: generate_constraint_pairs(cfg, precondition, templates))
    assert len(pairs) == 10
