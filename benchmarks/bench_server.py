"""Front-door benchmark: the HTTP server under concurrent load, cold vs warm.

Runs one :class:`~repro.server.app.SynthesisServer` against a fresh
persistent store root and drives the quick-preset suite subset through it
with concurrent stdlib clients, in three phases:

* **cold** — empty store: every request pays reduction + solve,
* **warm** — same server, same requests: served from the content-addressed
  store (``served_from_store=True``),
* **restart_warm** — a *new* server (fresh engine, fresh process-level
  caches) on the same store root: persistence across restarts, not
  process-lifetime memoisation.

Reports requests/sec and p50/p95 latency per phase to ``BENCH_server.json``
(shared ``bench_meta`` provenance block).  ``--min-warm-speedup`` turns the
warm-vs-cold mean-latency ratio into a CI gate::

    python benchmarks/bench_server.py --quick --limit 6 --min-warm-speedup 2
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import _bench_config

from repro.api import SynthesisRequest
from repro.server import SynthesisClient, SynthesisServer, serve_in_background
from repro.solvers.base import SolverOptions
from repro.suite.registry import all_benchmarks

SOLVE_BUDGET = SolverOptions(restarts=1, max_iterations=100, time_limit=10.0)


def _documents(quick: bool, limit: int | None, limit_variables: int = 8) -> list[dict]:
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]
    return [
        SynthesisRequest(
            program=benchmark.source,
            mode="weak",
            precondition=benchmark.precondition,
            objective=benchmark.objective(),
            options=benchmark.options(upsilon=1),
            solver_options=SOLVE_BUDGET,
            request_id=benchmark.name,
        ).to_dict()
        for benchmark in benchmarks
    ]


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))]


def _drive(url: str, documents: list[dict], clients: int, rounds: int) -> dict:
    """Fire ``rounds`` copies of every document from ``clients`` threads."""
    work = [document for _ in range(rounds) for document in documents]
    latencies: list[float] = []
    served = 0

    def one(document: dict) -> tuple[float, bool]:
        client = SynthesisClient(url)
        start = time.perf_counter()
        envelope = client.synthesize(document)
        elapsed = time.perf_counter() - start
        if envelope["status"] == "error":
            raise RuntimeError(f"{document.get('request_id')}: {envelope['error']}")
        return elapsed, bool(envelope.get("served_from_store"))

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        for elapsed, from_store in pool.map(one, work):
            latencies.append(elapsed)
            served += from_store
    wall = time.perf_counter() - wall_start
    return {
        "requests": len(work),
        "served_from_store": served,
        "wall_seconds": wall,
        "requests_per_second": len(work) / wall if wall else None,
        "latency_mean_ms": statistics.fmean(latencies) * 1e3,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
        "latency_p95_ms": _percentile(latencies, 0.95) * 1e3,
    }


def run(
    quick: bool = True,
    limit: int | None = None,
    clients: int = 4,
    warm_rounds: int = 3,
) -> dict:
    documents = _documents(quick, limit)
    with tempfile.TemporaryDirectory(prefix="bench-server-store-") as root:
        first = SynthesisServer(store=root, workers=clients, scheduler="off")
        with serve_in_background(first) as handle:
            cold = _drive(handle.url, documents, clients, rounds=1)
            warm = _drive(handle.url, documents, clients, rounds=warm_rounds)
        # A brand-new server+engine on the same root: only the disk is warm.
        second = SynthesisServer(store=root, workers=clients, scheduler="off")
        with serve_in_background(second) as handle:
            restart = _drive(handle.url, documents, clients, rounds=warm_rounds)

    assert cold["served_from_store"] == 0
    warm_speedup = cold["latency_mean_ms"] / warm["latency_mean_ms"]
    restart_speedup = cold["latency_mean_ms"] / restart["latency_mean_ms"]
    return {
        "benchmark": "server-front-door",
        "meta": _bench_config.bench_meta(quick),
        "quick": quick,
        "phases": {"cold": cold, "warm": warm, "restart_warm": restart},
        "summary": {
            "programs": len(documents),
            "concurrent_clients": clients,
            "warm_speedup": warm_speedup,
            "restart_warm_speedup": restart_speedup,
            "warm_hit_rate": warm["served_from_store"] / warm["requests"],
            "restart_hit_rate": restart["served_from_store"] / restart["requests"],
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", default=True, help="small benchmarks only (default)")
    parser.add_argument("--full", dest="quick", action="store_false", help="include the large benchmarks")
    parser.add_argument("--limit", type=int, default=None, help="only the first N programs")
    parser.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    parser.add_argument("--output", default="BENCH_server.json", help="write the JSON report here")
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=None,
        help="fail (exit 1) when warm mean latency is not this many times "
        "better than cold (CI gate)",
    )
    args = parser.parse_args(argv)

    report = run(quick=args.quick, limit=args.limit, clients=args.clients)
    phases, summary = report["phases"], report["summary"]
    for name in ("cold", "warm", "restart_warm"):
        phase = phases[name]
        print(
            f"{name:<13}: {phase['requests']:>3} requests, "
            f"{phase['requests_per_second']:7.2f} req/s, "
            f"p50 {phase['latency_p50_ms']:8.2f}ms, p95 {phase['latency_p95_ms']:8.2f}ms, "
            f"{phase['served_from_store']} from store"
        )
    print(f"warm speedup  : {summary['warm_speedup']:.2f}x (hit rate {summary['warm_hit_rate']:.0%})")
    print(f"restart warm  : {summary['restart_warm_speedup']:.2f}x (hit rate {summary['restart_hit_rate']:.0%})")
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {args.output}")

    if args.min_warm_speedup is not None and summary["warm_speedup"] < args.min_warm_speedup:
        print(
            f"FAIL: warm speedup {summary['warm_speedup']:.2f}x "
            f"< required {args.min_warm_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
