"""Front-door benchmark: the HTTP server under concurrent load, cold vs warm.

Runs one :class:`~repro.server.app.SynthesisServer` against a fresh
persistent store root and drives the quick-preset suite subset through it
with concurrent stdlib clients, in three phases:

* **cold** — empty store: every request pays reduction + solve,
* **warm** — same server, same requests: served from the content-addressed
  store (``served_from_store=True``),
* **restart_warm** — a *new* server (fresh engine, fresh process-level
  caches) on the same store root: persistence across restarts, not
  process-lifetime memoisation.

On a multi-core host a fourth section runs the **concurrency sweep**: a
fresh store-less server per point at ``--workers`` 1/2/4 (process executor
via ``executor="auto"``), all-cold traffic each time, reporting req/s and
p50/p95 per point — the multi-core scaling curve of the engine.  The sweep
is skipped entirely on single-vCPU hosts, where ``"auto"`` resolves to
threads and the curve would only measure the GIL.

Reports to ``BENCH_server.json`` (shared ``bench_meta`` provenance block,
resource monitor included) and appends one summary row per run to
``BENCH_history.jsonl`` for cross-PR trend tracking.  ``--min-warm-speedup``
and ``--min-scaling`` turn the warm-latency ratio and the workers=2-vs-1
throughput ratio into CI gates::

    python benchmarks/bench_server.py --quick --limit 6 \
        --min-warm-speedup 2 --min-scaling 1.3
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import _bench_config

from repro.api import SynthesisRequest
from repro.server import SynthesisClient, SynthesisServer, serve_in_background
from repro.solvers.base import SolverOptions
from repro.suite.registry import all_benchmarks

SOLVE_BUDGET = SolverOptions(restarts=1, max_iterations=100, time_limit=10.0)

#: The concurrency-sweep work-list: quick-preset programs whose cold cost sits
#: in the same tens-to-hundreds-of-ms band.  A balanced set is what makes the
#: workers=2-vs-1 ratio measure the *executor*: one dominant program (e.g.
#: ``sum`` at ~10x the rest) would put a serial floor under every point and
#: cap the apparent scaling at ~1.1x however many cores run.
SWEEP_PROGRAMS = (
    "euclidex2",
    "prod4br",
    "wensley",
    "prodbin",
    "hard",
    "petter",
    "cohencu",
    "lcm1",
    "lcm2",
    "z3sqrt",
    "mannadiv",
    "dijkstra",
)


def _document(benchmark) -> dict:
    return SynthesisRequest(
        program=benchmark.source,
        mode="weak",
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=benchmark.options(upsilon=1),
        solver_options=SOLVE_BUDGET,
        request_id=benchmark.name,
    ).to_dict()


def _documents(quick: bool, limit: int | None, limit_variables: int = 8) -> list[dict]:
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]
    return [_document(benchmark) for benchmark in benchmarks]


def _sweep_documents() -> list[dict]:
    from repro.suite.registry import get_benchmark

    return [_document(get_benchmark(name)) for name in SWEEP_PROGRAMS]


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))]


def _drive(url: str, documents: list[dict], clients: int, rounds: int) -> dict:
    """Fire ``rounds`` copies of every document from ``clients`` threads."""
    work = [document for _ in range(rounds) for document in documents]
    latencies: list[float] = []
    served = 0

    def one(document: dict) -> tuple[float, bool]:
        client = SynthesisClient(url)
        start = time.perf_counter()
        envelope = client.synthesize(document)
        elapsed = time.perf_counter() - start
        if envelope["status"] == "error":
            raise RuntimeError(f"{document.get('request_id')}: {envelope['error']}")
        return elapsed, bool(envelope.get("served_from_store"))

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        for elapsed, from_store in pool.map(one, work):
            latencies.append(elapsed)
            served += from_store
    wall = time.perf_counter() - wall_start
    return {
        "requests": len(work),
        "served_from_store": served,
        "wall_seconds": wall,
        "requests_per_second": len(work) / wall if wall else None,
        "latency_mean_ms": statistics.fmean(latencies) * 1e3,
        "latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
        "latency_p95_ms": _percentile(latencies, 0.95) * 1e3,
    }


def _sweep_points(cpus: int) -> list[int]:
    """The worker counts of the concurrency sweep (empty on a 1-vCPU host)."""
    if cpus < 2:
        return []
    return [w for w in (1, 2, 4) if w <= max(2, cpus)]


def workers_sweep(
    documents: list[dict] | None = None, clients: int = 4, cpus: int | None = None
) -> dict:
    """Cold req/s per worker count: a fresh store-less server per point.

    Every point pays full reduction + solve for every request (no store, a
    brand-new engine each time) over the balanced :data:`SWEEP_PROGRAMS`
    work-list, so the curve isolates how the engine's executor scales with
    worker processes — ``executor="auto"`` resolves to the process back-end
    at every multi-worker point on these hosts.
    """
    documents = documents if documents is not None else _sweep_documents()
    cpus = cpus if cpus is not None else (os.cpu_count() or 1)
    points: dict[str, dict] = {}
    for workers in _sweep_points(cpus):
        server = SynthesisServer(workers=workers, scheduler="off")
        with serve_in_background(server) as handle:
            executor_kind = server.engine.executor_kind
            point = _drive(handle.url, documents, clients, rounds=1)
        point["workers"] = workers
        point["executor"] = executor_kind
        points[str(workers)] = point
    result: dict = {"skipped": not points, "cpus": cpus, "points": points}
    if "1" in points and "2" in points:
        result["scaling_2x"] = (
            points["2"]["requests_per_second"] / points["1"]["requests_per_second"]
        )
    if "1" in points and "4" in points:
        result["scaling_4x"] = (
            points["4"]["requests_per_second"] / points["1"]["requests_per_second"]
        )
    return result


def run(
    quick: bool = True,
    limit: int | None = None,
    clients: int = 4,
    warm_rounds: int = 3,
    sweep: bool = True,
) -> dict:
    documents = _documents(quick, limit)
    with tempfile.TemporaryDirectory(prefix="bench-server-store-") as root:
        first = SynthesisServer(store=root, workers=clients, scheduler="off")
        with serve_in_background(first) as handle:
            cold = _drive(handle.url, documents, clients, rounds=1)
            warm = _drive(handle.url, documents, clients, rounds=warm_rounds)
        # A brand-new server+engine on the same root: only the disk is warm.
        second = SynthesisServer(store=root, workers=clients, scheduler="off")
        with serve_in_background(second) as handle:
            restart = _drive(handle.url, documents, clients, rounds=warm_rounds)
    scaling = workers_sweep(clients=clients) if sweep else {"skipped": True, "points": {}}

    assert cold["served_from_store"] == 0
    warm_speedup = cold["latency_mean_ms"] / warm["latency_mean_ms"]
    restart_speedup = cold["latency_mean_ms"] / restart["latency_mean_ms"]
    summary = {
        "programs": len(documents),
        "concurrent_clients": clients,
        "warm_speedup": warm_speedup,
        "restart_warm_speedup": restart_speedup,
        "warm_hit_rate": warm["served_from_store"] / warm["requests"],
        "restart_hit_rate": restart["served_from_store"] / restart["requests"],
    }
    if "scaling_2x" in scaling:
        summary["scaling_2x"] = scaling["scaling_2x"]
    return {
        "benchmark": "server-front-door",
        "meta": _bench_config.bench_meta(quick),
        "quick": quick,
        "phases": {"cold": cold, "warm": warm, "restart_warm": restart},
        "workers_sweep": scaling,
        "summary": summary,
    }


def append_history(path: str, report: dict) -> None:
    """Append one compact trend row for this run to the in-repo history file.

    One JSON object per line (append-only, like the solve corpus): enough to
    plot req/s, store-hit behaviour and multi-core scaling across PRs
    without re-opening the full per-run reports.
    """
    meta = report["meta"]
    sweep = report.get("workers_sweep", {})
    row = {
        "bench": report["benchmark"],
        "git_revision": meta.get("git_revision"),
        "timestamp_utc": meta.get("timestamp_utc"),
        "quick": report["quick"],
        "cpus": meta.get("cpus"),
        "summary": report["summary"],
        "cold_rps": report["phases"]["cold"]["requests_per_second"],
        "sweep_rps": {
            workers: point["requests_per_second"]
            for workers, point in sweep.get("points", {}).items()
        },
    }
    resources = meta.get("resources")
    if resources:
        row["rss_high_water_bytes"] = resources.get("rss_high_water_bytes")
        row["cpu_children_seconds"] = resources.get(
            "cpu_children_user_seconds", 0.0
        ) + resources.get("cpu_children_system_seconds", 0.0)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", default=True, help="small benchmarks only (default)")
    parser.add_argument("--full", dest="quick", action="store_false", help="include the large benchmarks")
    parser.add_argument("--limit", type=int, default=None, help="only the first N programs")
    parser.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    parser.add_argument("--output", default="BENCH_server.json", help="write the JSON report here")
    parser.add_argument(
        "--no-sweep",
        dest="sweep",
        action="store_false",
        help="skip the multi-core concurrency sweep",
    )
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="append one summary row per run to this JSONL trend file (default: %(default)s)",
    )
    parser.add_argument(
        "--no-history", dest="history", action="store_const", const=None,
        help="do not append to the trend history",
    )
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=None,
        help="fail (exit 1) when warm mean latency is not this many times "
        "better than cold (CI gate)",
    )
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=None,
        help="fail (exit 1) when workers=2 cold throughput is not this many "
        "times workers=1 (CI gate; skipped where the sweep is skipped)",
    )
    args = parser.parse_args(argv)

    _bench_config.start_resource_monitor()
    report = run(quick=args.quick, limit=args.limit, clients=args.clients, sweep=args.sweep)
    report["meta"]["resources"] = _bench_config.resource_snapshot()
    phases, summary = report["phases"], report["summary"]
    for name in ("cold", "warm", "restart_warm"):
        phase = phases[name]
        print(
            f"{name:<13}: {phase['requests']:>3} requests, "
            f"{phase['requests_per_second']:7.2f} req/s, "
            f"p50 {phase['latency_p50_ms']:8.2f}ms, p95 {phase['latency_p95_ms']:8.2f}ms, "
            f"{phase['served_from_store']} from store"
        )
    print(f"warm speedup  : {summary['warm_speedup']:.2f}x (hit rate {summary['warm_hit_rate']:.0%})")
    print(f"restart warm  : {summary['restart_warm_speedup']:.2f}x (hit rate {summary['restart_hit_rate']:.0%})")
    sweep = report["workers_sweep"]
    if sweep.get("skipped"):
        print(f"workers sweep : skipped ({sweep.get('cpus', '?')} vCPU host)")
    else:
        for workers, point in sweep["points"].items():
            print(
                f"workers={workers:<5} : {point['requests_per_second']:7.2f} req/s cold "
                f"({point['executor']}), p50 {point['latency_p50_ms']:8.2f}ms, "
                f"p95 {point['latency_p95_ms']:8.2f}ms"
            )
        if "scaling_2x" in sweep:
            print(f"scaling 2x    : {sweep['scaling_2x']:.2f}x req/s at workers=2 vs 1")
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {args.output}")
    if args.history:
        append_history(args.history, report)
        print(f"appended trend row to {args.history}")

    failed = False
    if args.min_warm_speedup is not None and summary["warm_speedup"] < args.min_warm_speedup:
        print(
            f"FAIL: warm speedup {summary['warm_speedup']:.2f}x "
            f"< required {args.min_warm_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if args.min_scaling is not None and not sweep.get("skipped"):
        scaling = sweep.get("scaling_2x")
        if scaling is None or scaling < args.min_scaling:
            print(
                f"FAIL: workers=2 scaling {scaling if scaling is None else f'{scaling:.2f}x'} "
                f"< required {args.min_scaling:.2f}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
