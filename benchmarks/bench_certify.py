"""Certificate subsystem benchmarks: exact-check cost, repair rounds, coverage.

Measures the ``verify="exact"`` pipeline over the suite's quick preset and
emits machine-readable JSON (``BENCH_certify.json`` by default) so the
verification trajectory is tracked across PRs::

    python benchmarks/bench_certify.py --quick          # CI preset
    python benchmarks/bench_certify.py --output BENCH_certify.json

Per benchmark: whether the Step-4 solution verified, the denominator of the
successful lift, how many repair rounds were needed, and the exact-check time
next to the solve time (the certificate tax).  Aggregates report the
verified/unverified counts and a repair-round histogram.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

import _bench_config

from repro.api.engine import Engine
from repro.bench.runner import quick_subset, request_from_benchmark
from repro.certify import Certificate, check_certificate
from repro.pipeline.jobs import job_from_benchmark
from repro.solvers.base import SolverOptions
from repro.suite.registry import all_benchmarks

SOLVE_BUDGET = SolverOptions(restarts=1, max_iterations=200, time_limit=60.0)


def _select(quick: bool, limit: int | None, limit_variables: int = 8):
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = quick_subset(benchmarks, limit_variables=limit_variables)
    if limit is not None:
        benchmarks = benchmarks[:limit]
    return benchmarks


def measure_certification(benchmarks, quick: bool, max_repair_rounds: int) -> dict:
    """Run ``verify="exact"`` over the benchmarks and collect per-row metrics."""
    rows = []
    histogram: dict[int, int] = {}
    with Engine() as engine:
        for benchmark in benchmarks:
            job = job_from_benchmark(benchmark, quick=quick)
            options = dataclasses.replace(
                job.options,
                verify="exact",
                strategy="portfolio",
                max_repair_rounds=max_repair_rounds,
            )
            request = request_from_benchmark(
                benchmark, solve=True, quick=quick, options=options
            )
            start = time.perf_counter()
            response = engine.synthesize(
                dataclasses.replace(request, solver_options=SOLVE_BUDGET)
            )
            total = time.perf_counter() - start
            verification = response.verification or {}
            recheck_seconds = None
            if response.certificate is not None:
                # The independent re-check: deserialize and validate from scratch.
                certificate = Certificate.from_dict(response.certificate)
                t0 = time.perf_counter()
                assert check_certificate(certificate, task=response.task).ok
                recheck_seconds = time.perf_counter() - t0
            rounds = int(verification.get("repair_rounds", 0))
            histogram[rounds] = histogram.get(rounds, 0) + 1
            rows.append(
                {
                    "benchmark": benchmark.name,
                    "status": response.status,
                    "verified": bool(verification.get("verified", False)),
                    "repair_rounds": rounds,
                    "lift_denominator": verification.get("lift_denominator"),
                    "solve_seconds": response.timings.get("solve_seconds"),
                    "verify_seconds": response.timings.get("verify_seconds"),
                    "recheck_seconds": recheck_seconds,
                    "total_seconds": total,
                    "reason": verification.get("reason"),
                }
            )
            print(
                f"[certify] {benchmark.name}: status={response.status} "
                f"verified={rows[-1]['verified']} rounds={rounds} "
                f"solve={rows[-1]['solve_seconds'] or 0:.2f}s "
                f"verify={rows[-1]['verify_seconds'] or 0:.2f}s",
                flush=True,
            )
    solved = [row for row in rows if row["status"] == "ok"]
    verified = [row for row in solved if row["verified"]]
    solve_total = sum(row["solve_seconds"] or 0.0 for row in solved)
    verify_total = sum(row["verify_seconds"] or 0.0 for row in solved)
    return {
        "rows": rows,
        "summary": {
            "benchmarks": len(rows),
            "solved": len(solved),
            "verified": len(verified),
            "unverified": len(solved) - len(verified),
            "via_repair": sum(1 for row in verified if row["repair_rounds"]),
            "repair_round_histogram": {str(k): v for k, v in sorted(histogram.items())},
            "solve_seconds_total": solve_total,
            "verify_seconds_total": verify_total,
            "verify_over_solve": (verify_total / solve_total) if solve_total else None,
        },
    }


def main(argv=None) -> int:
    _bench_config.start_resource_monitor()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI preset (small benchmarks, Upsilon=1)")
    parser.add_argument("--limit", type=int, default=None, help="measure at most N benchmarks")
    parser.add_argument("--max-repair-rounds", type=int, default=3)
    parser.add_argument("--output", default="BENCH_certify.json")
    args = parser.parse_args(argv)

    benchmarks = _select(args.quick, args.limit)
    report = {
        "benchmark": "certify",
        "meta": _bench_config.bench_meta(args.quick),
        "quick": args.quick,
        **measure_certification(benchmarks, args.quick, args.max_repair_rounds),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    summary = report["summary"]
    print(
        f"[certify] verified {summary['verified']}/{summary['solved']} solved instances "
        f"({summary['via_repair']} via repair); verify/solve time ratio "
        f"{summary['verify_over_solve']:.3f}"
        if summary["verify_over_solve"] is not None
        else "[certify] no solved instances"
    )
    print(f"[certify] wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
