"""Shared configuration for the pytest-benchmark harness.

By default the benchmarks run a *quick* preset (small benchmarks, multiplier
degree 1) so that ``pytest benchmarks/ --benchmark-only`` finishes in a couple
of minutes.  Set the environment variable ``REPRO_BENCH_FULL=1`` to reproduce
the paper's full parameter set (this is what EXPERIMENTS.md reports; expect
several minutes for the largest instances).
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Bump when the shared meta block below changes incompatibly, so readers of
#: the BENCH_*.json trajectory can tell which fields to expect.
BENCH_META_SCHEMA_VERSION = 1


def _git_revision() -> str | None:
    """The short revision the numbers were measured at (None outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def bench_meta(quick: bool) -> dict:
    """The provenance block every BENCH_*.json emitter stamps into its report.

    One shared shape (schema version, git revision, interpreter, UTC
    timestamp, quick flag) so the reports of different harnesses can be
    correlated across PRs without per-file parsing rules.
    """
    return {
        "schema_version": BENCH_META_SCHEMA_VERSION,
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "quick": quick,
    }


def benchmark_options(benchmark):
    """The synthesis options to use for a suite benchmark in the current mode."""
    if FULL_MODE:
        return benchmark.options()
    return benchmark.options(upsilon=1)
