"""Shared configuration for the pytest-benchmark harness.

By default the benchmarks run a *quick* preset (small benchmarks, multiplier
degree 1) so that ``pytest benchmarks/ --benchmark-only`` finishes in a couple
of minutes.  Set the environment variable ``REPRO_BENCH_FULL=1`` to reproduce
the paper's full parameter set (this is what EXPERIMENTS.md reports; expect
several minutes for the largest instances).
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "") == "1"


def benchmark_options(benchmark):
    """The synthesis options to use for a suite benchmark in the current mode."""
    if FULL_MODE:
        return benchmark.options()
    return benchmark.options(upsilon=1)
