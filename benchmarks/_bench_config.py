"""Shared configuration for the pytest-benchmark harness.

By default the benchmarks run a *quick* preset (small benchmarks, multiplier
degree 1) so that ``pytest benchmarks/ --benchmark-only`` finishes in a couple
of minutes.  Set the environment variable ``REPRO_BENCH_FULL=1`` to reproduce
the paper's full parameter set (this is what EXPERIMENTS.md reports; expect
several minutes for the largest instances).
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
import sys
import threading
import time

try:  # POSIX-only stdlib module; benches degrade gracefully without it
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: Bump when the shared meta block below changes incompatibly, so readers of
#: the BENCH_*.json trajectory can tell which fields to expect.
BENCH_META_SCHEMA_VERSION = 1


def _git_revision() -> str | None:
    """The short revision the numbers were measured at (None outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _rss_bytes() -> float | None:
    """Resident set size of this process right now (Linux; None elsewhere)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return float(fields[1]) * float(os.sysconf("SC_PAGE_SIZE"))
    except (OSError, IndexError, ValueError):
        return None


class ResourceMonitor:
    """RSS high-water + CPU-time sampling for one benchmark run.

    A daemon thread samples this process's resident set every
    ``interval`` seconds; :meth:`snapshot` folds in ``getrusage`` for the
    process *and its children* — under the process executor the workers do
    the heavy lifting, so children CPU is where the real cost shows up.
    All fields degrade to ``None``/``0`` where the platform lacks the
    counters rather than failing a bench.
    """

    def __init__(self, interval: float = 0.2) -> None:
        self.interval = interval
        self._started = time.time()
        self._rss_high_water = _rss_bytes() or 0.0
        self._samples = 1 if self._rss_high_water else 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="bench-resource-monitor", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            rss = _rss_bytes()
            if rss is None:
                continue
            with self._lock:
                self._samples += 1
                if rss > self._rss_high_water:
                    self._rss_high_water = rss

    def snapshot(self) -> dict:
        """The resource block to stamp into a report's meta (monitor keeps running)."""
        with self._lock:
            rss_high_water = self._rss_high_water
            samples = self._samples
        block: dict = {
            "rss_high_water_bytes": rss_high_water or None,
            "rss_samples": samples,
            "wall_seconds": time.time() - self._started,
        }
        if _resource is not None:
            own = _resource.getrusage(_resource.RUSAGE_SELF)
            kids = _resource.getrusage(_resource.RUSAGE_CHILDREN)
            block.update(
                {
                    "cpu_user_seconds": own.ru_utime,
                    "cpu_system_seconds": own.ru_stime,
                    "cpu_children_user_seconds": kids.ru_utime,
                    "cpu_children_system_seconds": kids.ru_stime,
                    # ru_maxrss is KiB on Linux; the high-water here covers
                    # the whole process lifetime, not just this monitor.
                    "maxrss_bytes": float(own.ru_maxrss) * 1024.0,
                    "maxrss_children_bytes": float(kids.ru_maxrss) * 1024.0,
                }
            )
        return block

    def stop(self) -> None:
        self._stop.set()


_monitor: ResourceMonitor | None = None


def start_resource_monitor() -> ResourceMonitor:
    """Start (or reuse) the module-level resource monitor of this bench run."""
    global _monitor
    if _monitor is None:
        _monitor = ResourceMonitor()
    return _monitor


def resource_snapshot() -> dict | None:
    """The running monitor's snapshot, or ``None`` when none was started."""
    return _monitor.snapshot() if _monitor is not None else None


def bench_meta(quick: bool) -> dict:
    """The provenance block every BENCH_*.json emitter stamps into its report.

    One shared shape (schema version, git revision, interpreter, UTC
    timestamp, quick flag, resource usage) so the reports of different
    harnesses can be correlated across PRs without per-file parsing rules.
    The ``resources`` block is present when the emitter called
    :func:`start_resource_monitor` early in its ``main``.
    """
    return {
        "schema_version": BENCH_META_SCHEMA_VERSION,
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "quick": quick,
        "resources": resource_snapshot(),
    }


def benchmark_options(benchmark):
    """The synthesis options to use for a suite benchmark in the current mode."""
    if FULL_MODE:
        return benchmark.options()
    return benchmark.options(upsilon=1)
