"""Staged-reduction benchmarks: stage cache reuse, parallel translation, escalation.

Three measurements over the suite registry, emitted as machine-readable JSON
(``BENCH_reduction.json`` by default) so the reduction-performance trajectory
is tracked across PRs::

    python benchmarks/bench_reduction.py --quick           # CI preset
    python benchmarks/bench_reduction.py --output BENCH_reduction.json

1. **cold vs staged-warm** — a degree sweep (d = 1..max) over every program,
   run twice against one shared :class:`~repro.reduction.cache.StageCache`:
   the cold pass builds every stage, the warm pass re-requests the same sweep
   and assembles from cached stages.  The report also breaks out *prefix*
   reuse: how much of the warm-within-cold sweep (second degree of the first
   pass) came from shared frontend/precondition stages.
2. **translation** — the Putinar translation of the largest systems, three
   ways: the symbolic per-``Polynomial`` reference loop (the old sequential
   baseline), the vectorised flat-array kernel, and the parallel path an
   ``Engine(translation_workers="auto")`` would actually run (the
   shared-memory fan-out where calibration enables it, the sequential
   vectorised kernel elsewhere).  ``--min-translation-speedup`` turns the
   parallel-path speedup into a CI gate.
3. **escalation vs fixed degree** — ``degree="auto"`` wall-clock against the
   sum of the fixed-degree requests it replaces.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import _bench_config

from repro.api.engine import Engine
from repro.api.request import SynthesisRequest
from repro.invariants.putinar import putinar_translate
from repro.invariants.translation import TranslationPool, calibrate_parallel_translation
from repro.pipeline.cache import TaskCache
from repro.pipeline.jobs import SynthesisJob
from repro.reduction import EscalationTrace
from repro.solvers.base import SolverOptions
from repro.suite.registry import all_benchmarks

SOLVE_BUDGET = SolverOptions(restarts=1, max_iterations=150, time_limit=15.0)


def _select(quick: bool, limit: int | None, limit_variables: int = 8):
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]
    return benchmarks


def _sweep_jobs(benchmark, degrees, upsilon: int) -> list[SynthesisJob]:
    return [
        SynthesisJob(
            name=f"{benchmark.name}@d{degree}",
            source=benchmark.source,
            precondition=benchmark.precondition,
            options=benchmark.options(degree=degree, upsilon=upsilon),
        )
        for degree in degrees
    ]


def measure_degree_sweep(benchmarks, degrees=(1, 2), upsilon: int = 1) -> dict:
    """Cold pass vs staged-warm pass of a degree sweep over one shared cache."""
    cache = TaskCache()
    per_benchmark: dict[str, dict] = {}
    cold_total = 0.0
    warm_total = 0.0
    prefix_hits = 0
    prefix_possible = 0
    for benchmark in benchmarks:
        jobs = _sweep_jobs(benchmark, degrees, upsilon)
        cold = 0.0
        for index, job in enumerate(jobs):
            start = time.perf_counter()
            _, _, report = cache.get_or_build_with_report(job)
            cold += time.perf_counter() - start
            if index > 0:
                # Within-sweep prefix reuse: later degrees share the
                # program-level stages (frontend, preconditions).
                prefix_hits += report.cached_stages
                prefix_possible += len(report.stages)
        warm = 0.0
        for job in jobs:
            start = time.perf_counter()
            _, from_cache = cache.get_or_build(job)
            warm += time.perf_counter() - start
            assert from_cache
        per_benchmark[benchmark.name] = {"cold_seconds": cold, "staged_warm_seconds": warm}
        cold_total += cold
        warm_total += warm
    return {
        "degrees": list(degrees),
        "per_benchmark": per_benchmark,
        "cold_total_seconds": cold_total,
        "staged_warm_total_seconds": warm_total,
        "warm_speedup": cold_total / warm_total if warm_total else None,
        "prefix_stage_hit_rate": prefix_hits / prefix_possible if prefix_possible else None,
        "stage_stats": cache.stats(),
    }


def measure_translation(benchmarks, workers: int = 4, upsilon: int = 1, top: int = 3) -> dict:
    """Symbolic loop vs vectorised kernel vs the auto-gated parallel path.

    ``parallel`` is what ``Engine(translation_workers="auto")`` actually runs:
    the shared-memory pool where :func:`calibrate_parallel_translation` says
    it wins on this machine, the sequential vectorised kernel everywhere else
    — so its speedup over the symbolic baseline is the honest end-to-end gain
    and the number the CI gate holds.
    """
    from repro.invariants.synthesis import build_task

    tasks = [
        (benchmark.name, build_task(benchmark.source, benchmark.precondition, None,
                                    benchmark.options(upsilon=upsilon)))
        for benchmark in benchmarks
    ]
    # The biggest systems are where the translation dominates the reduction.
    tasks.sort(key=lambda pair: pair[1].system.size, reverse=True)
    tasks = tasks[:top]

    auto_enabled = calibrate_parallel_translation(workers=workers)
    pool = TranslationPool(workers=workers) if auto_enabled else None
    if pool is not None:
        pool.warm()  # worker start-up is not billed to the first program

    per_benchmark: dict[str, dict] = {}
    symbolic_total = 0.0
    vectorized_total = 0.0
    parallel_total = 0.0
    try:
        for name, task in tasks:
            start = time.perf_counter()
            symbolic = putinar_translate(task.pairs, upsilon=upsilon, kernel="symbolic")
            symbolic_seconds = time.perf_counter() - start
            start = time.perf_counter()
            vectorized = putinar_translate(task.pairs, upsilon=upsilon)
            vectorized_seconds = time.perf_counter() - start
            assert vectorized.size == symbolic.size
            if pool is not None:
                start = time.perf_counter()
                parallel = putinar_translate(task.pairs, upsilon=upsilon, pool=pool)
                parallel_seconds = time.perf_counter() - start
                assert parallel.size == symbolic.size
            else:
                parallel_seconds = vectorized_seconds
            per_benchmark[name] = {
                "pairs": len(task.pairs),
                "system_size": symbolic.size,
                "symbolic_seconds": symbolic_seconds,
                "vectorized_seconds": vectorized_seconds,
                "parallel_seconds": parallel_seconds,
                "speedup_vectorized": symbolic_seconds / vectorized_seconds if vectorized_seconds else None,
                "speedup_parallel": symbolic_seconds / parallel_seconds if parallel_seconds else None,
            }
            symbolic_total += symbolic_seconds
            vectorized_total += vectorized_seconds
            parallel_total += parallel_seconds
    finally:
        if pool is not None:
            pool.close()
    return {
        "workers": workers,
        "auto_enabled": auto_enabled,
        "per_benchmark": per_benchmark,
        "sequential_total_seconds": symbolic_total,
        "vectorized_total_seconds": vectorized_total,
        "parallel_total_seconds": parallel_total,
        "vectorized_speedup": symbolic_total / vectorized_total if vectorized_total else None,
        "speedup": symbolic_total / parallel_total if parallel_total else None,
    }


def measure_escalation(benchmarks, max_degree: int = 2, upsilon: int = 1) -> dict:
    """``degree="auto"`` vs the fixed-degree requests the ladder replaces."""
    per_benchmark: dict[str, dict] = {}
    auto_total = 0.0
    fixed_total = 0.0
    for benchmark in benchmarks:
        with Engine() as engine:
            auto_request = SynthesisRequest(
                program=benchmark.source, mode="weak", precondition=benchmark.precondition,
                objective=benchmark.objective(),
                options=benchmark.options(degree="auto", max_degree=max_degree, upsilon=upsilon),
                solver_options=SOLVE_BUDGET, request_id=benchmark.name,
            )
            start = time.perf_counter()
            auto = engine.synthesize(auto_request)
            auto_seconds = time.perf_counter() - start
        trace = EscalationTrace.from_dict(auto.escalation) if auto.escalation else None
        # The fixed-degree alternative: run every degree of the ladder cold.
        fixed_seconds = 0.0
        for degree in range(1, max_degree + 1):
            with Engine() as engine:
                try:
                    fixed_request = SynthesisRequest(
                        program=benchmark.source, mode="weak", precondition=benchmark.precondition,
                        objective=benchmark.objective(),
                        options=benchmark.options(degree=degree, upsilon=upsilon),
                        solver_options=SOLVE_BUDGET,
                    )
                    start = time.perf_counter()
                    response = engine.synthesize(fixed_request)
                    fixed_seconds += time.perf_counter() - start
                except Exception:
                    continue
                if response.status == "ok":
                    break
        per_benchmark[benchmark.name] = {
            "auto_seconds": auto_seconds,
            "fixed_ladder_seconds": fixed_seconds,
            "final_degree": trace.final_degree if trace else None,
            "degrees_tried": trace.degrees_tried if trace else [],
            "status": auto.status,
        }
        auto_total += auto_seconds
        fixed_total += fixed_seconds
    return {
        "max_degree": max_degree,
        "per_benchmark": per_benchmark,
        "auto_total_seconds": auto_total,
        "fixed_ladder_total_seconds": fixed_total,
        "auto_vs_fixed_ratio": auto_total / fixed_total if fixed_total else None,
    }


def run(quick: bool = True, limit: int | None = None, workers: int = 4) -> dict:
    benchmarks = _select(quick, limit)
    sweep = measure_degree_sweep(benchmarks)
    translation = measure_translation(benchmarks, workers=workers)
    escalation = measure_escalation(benchmarks[: min(len(benchmarks), 6)])
    return {
        "benchmark": "staged-reduction",
        "meta": _bench_config.bench_meta(quick),
        "quick": quick,
        "programs": len(benchmarks),
        "degree_sweep": sweep,
        "translation": translation,
        "escalation": escalation,
        "summary": {
            "staged_warm_speedup": sweep["warm_speedup"],
            "prefix_stage_hit_rate": sweep["prefix_stage_hit_rate"],
            "translation_vectorized_speedup": translation["vectorized_speedup"],
            "translation_speedup": translation["speedup"],
            "escalation_vs_fixed_ratio": escalation["auto_vs_fixed_ratio"],
            "escalation_minimal_degrees": {
                name: row["final_degree"] for name, row in escalation["per_benchmark"].items()
            },
        },
    }


def main(argv: list[str] | None = None) -> int:
    _bench_config.start_resource_monitor()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", default=True, help="small benchmarks only (default)")
    parser.add_argument("--full", dest="quick", action="store_false", help="include the large benchmarks")
    parser.add_argument("--limit", type=int, default=None, help="only the first N programs")
    parser.add_argument("--workers", type=int, default=4, help="shared-memory pool width for parallel translation")
    parser.add_argument("--output", default="BENCH_reduction.json", help="write the JSON report here")
    parser.add_argument(
        "--min-translation-speedup", type=float, default=None,
        help="fail (exit 1) when the parallel translation path is below this speedup "
             "over the sequential symbolic baseline",
    )
    args = parser.parse_args(argv)

    report = run(quick=args.quick, limit=args.limit, workers=args.workers)
    summary = report["summary"]
    sweep = report["degree_sweep"]

    def fmt(value: float | None, spec: str, suffix: str = "") -> str:
        # Ratios are None for empty selections (e.g. --limit 0).
        return "-" if value is None else f"{value:{spec}}{suffix}"

    print(f"programs                 : {report['programs']}")
    print(f"degree-sweep cold        : {sweep['cold_total_seconds']:.2f}s")
    print(f"degree-sweep staged-warm : {sweep['staged_warm_total_seconds']:.4f}s "
          f"({fmt(summary['staged_warm_speedup'], '.0f', 'x')})")
    print(f"prefix stage hit rate    : {fmt(summary['prefix_stage_hit_rate'], '.0%')} "
          "(later degrees reusing program-level stages)")
    translation = report["translation"]
    fanout = (
        f"shared-memory fan-out over {translation['workers']} workers"
        if translation["auto_enabled"]
        else "sequential (calibration kept the fan-out off on this machine)"
    )
    print(f"vectorised translation   : {fmt(summary['translation_vectorized_speedup'], '.2f', 'x')} "
          "over the symbolic loop")
    print(f"parallel path            : {fmt(summary['translation_speedup'], '.2f', 'x')} — {fanout}")
    print(f"escalation vs fixed      : "
          f"{fmt(summary['escalation_vs_fixed_ratio'], '.2f', 'x wall-clock of the cold fixed ladder')}")
    print(f"minimal degrees          : {summary['escalation_minimal_degrees']}")
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {args.output}")
    if args.min_translation_speedup is not None:
        speedup = summary["translation_speedup"]
        if speedup is not None and speedup < args.min_translation_speedup:
            print(
                f"FAIL: parallel translation path {speedup:.2f}x is below the "
                f"--min-translation-speedup gate of {args.min_translation_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
