"""Microbenchmarks of the polynomial hot path: add, mul, pow and substitute.

Every stage of the synthesis pipeline (template construction, constraint-pair
generation, the Putinar/Handelman translations) bottoms out in
``Polynomial``/``Monomial`` arithmetic, so this script tracks the cost of the
four core operations on representative degree-2 and degree-4 template
polynomials.  It emits machine-readable JSON so future PRs can compare against
recorded numbers::

    python benchmarks/bench_polynomial.py                  # JSON to stdout
    python benchmarks/bench_polynomial.py --output out.json

The workloads mirror what Steps 1-3 actually do: dense templates over a
handful of program variables with small rational coefficients, multiplied by
multiplier polynomials and composed with update functions.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import timeit
from fractions import Fraction

import _bench_config

from repro.polynomial.monomial import Monomial
from repro.polynomial.ordering import monomials_up_to_degree
from repro.polynomial.polynomial import Polynomial

VARIABLES = ["x", "y", "z", "w", "u", "v"]


def template(degree: int, seed: int = 1) -> Polynomial:
    """A dense degree-``degree`` template over :data:`VARIABLES` with rational coefficients."""
    terms = {}
    value = seed
    for monomial in monomials_up_to_degree(VARIABLES, degree):
        value = (value * 37 + 11) % 101
        terms[monomial] = Fraction(value - 50, 7)
    return Polynomial(terms)


def _workloads() -> dict[str, tuple]:
    deg2_a = template(2, seed=1)
    deg2_b = template(2, seed=2)
    deg4_a = template(4, seed=3)
    deg4_b = template(4, seed=4)
    update = {
        "x": Polynomial.variable("x") + Polynomial.variable("y") + 1,
        "y": Polynomial.variable("y") * Fraction(1, 2) - 3,
    }
    linear = Polynomial.variable("x") + Polynomial.variable("y") + Polynomial.variable("z") + 1
    return {
        "add_deg2": (lambda: deg2_a + deg2_b,),
        "add_deg4": (lambda: deg4_a + deg4_b,),
        "mul_deg2": (lambda: deg2_a * deg2_b,),
        "mul_deg4_deg2": (lambda: deg4_a * deg2_b,),
        "pow_linear_4": (lambda: linear**4,),
        "substitute_deg2": (lambda: deg2_a.substitute(update),),
        "substitute_deg4": (lambda: deg4_a.substitute(update),),
    }


def _time(function, repeat: int) -> dict[str, float]:
    timer = timeit.Timer(function)
    number, _ = timer.autorange()
    best = min(timer.repeat(repeat=repeat, number=number)) / number
    return {"seconds_per_op": best, "ops_per_second": (1.0 / best) if best else float("inf")}


def run(repeat: int = 5) -> dict:
    results = {name: _time(fn, repeat) for name, (fn,) in _workloads().items()}
    interned = getattr(Monomial, "interned_count", None)
    return {
        "meta": {
            "python": platform.python_version(),
            "repeat": repeat,
            "variables": len(VARIABLES),
            "interned_monomials": interned() if callable(interned) else None,
        },
        "benchmarks": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeat", type=int, default=5, help="timing repetitions (best is kept)")
    parser.add_argument("--output", help="also write the JSON report to this file")
    args = parser.parse_args(argv)

    _bench_config.start_resource_monitor()
    report = run(repeat=args.repeat)
    report["meta"] = {**_bench_config.bench_meta(quick=False), **report["meta"]}
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
