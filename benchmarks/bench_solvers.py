"""Per-strategy Step-4 solver benchmarks over the suite registry.

For every suite program this script builds the Step 1-3 reduction once, then
solves the resulting quadratic system with each configured Step-4 strategy
(including the racing portfolio) under an identical budget, recording solve
wall-clock and feasibility.  It emits machine-readable JSON
(``BENCH_solvers.json`` by default) so the per-strategy performance trajectory
is tracked across PRs::

    python benchmarks/bench_solvers.py --quick             # CI preset
    python benchmarks/bench_solvers.py --output BENCH_solvers.json

The report's ``portfolio_vs_qclp`` section states the portfolio acceptance
criterion directly: the portfolio must solve every program the sequential
penalty solver solves, at equal-or-better median wall-clock.

The ``batch_vs_off`` section (``--batch-compare`` / ``--min-batch-speedup``)
states the batched-kernel acceptance criterion: the batched qclp solver
(``batch="on"``) must beat the retired per-restart SciPy loop
(``batch="off"``) on total wall-clock without losing coverage, and its
winning assignments must be bit-identical to the one-member-at-a-time replay
(``batch="rows"``).

Every run also appends one compact row (shared meta block, per-strategy
totals, RSS high-water) to ``BENCH_history.jsonl`` so the trajectory across
revisions survives the per-PR overwrite of ``BENCH_solvers.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import statistics
import sys
import tempfile
import time

import _bench_config

from repro.invariants.synthesis import build_task
from repro.solvers.base import SolverOptions
from repro.solvers.portfolio import make_solver
from repro.solvers.problem import compile_problem
from repro.suite.registry import all_benchmarks

DEFAULT_STRATEGIES = ("qclp", "gauss-newton", "alternating", "portfolio")


def _median(values: list[float]) -> float:
    # statistics.median, guarded for empty input (matches the bench tables).
    return statistics.median(values) if values else 0.0


def run(
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    quick: bool = True,
    limit: int | None = None,
    limit_variables: int = 8,
    solver_options: SolverOptions | None = None,
) -> dict:
    if solver_options is None:
        solver_options = SolverOptions(restarts=1, max_iterations=150, time_limit=15.0)
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]

    per_benchmark: dict[str, dict] = {}
    reduction_seconds = 0.0
    for benchmark in benchmarks:
        options = benchmark.options(upsilon=1) if quick else benchmark.options()
        start = time.perf_counter()
        task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(), options)
        compile_problem(task.system)  # shared IR: compiled once, outside the timed solves
        reduction_seconds += time.perf_counter() - start

        rows: dict[str, dict] = {}
        for strategy in strategies:
            solver = make_solver(strategy, solver_options)
            start = time.perf_counter()
            result = solver.solve(task.system)
            seconds = time.perf_counter() - start
            rows[strategy] = {
                "seconds": seconds,
                "feasible": bool(result.feasible),
                "status": result.status,
                "winner": result.strategy,
                "max_violation": result.max_violation,
                "residual_evaluations": result.residual_evaluations,
                "jacobian_evaluations": result.jacobian_evaluations,
                "batch_width": result.batch_width,
            }
        per_benchmark[benchmark.name] = {"system_size": task.system.size, "strategies": rows}

    per_strategy: dict[str, dict] = {}
    for strategy in strategies:
        rows = [entry["strategies"][strategy] for entry in per_benchmark.values()]
        seconds = [row["seconds"] for row in rows]
        solved = sum(1 for row in rows if row["feasible"])
        per_strategy[strategy] = {
            "solved": solved,
            "total": len(rows),
            "feasibility_rate": solved / len(rows) if rows else 0.0,
            "median_seconds": _median(seconds),
            "total_seconds": sum(seconds),
            "residual_evaluations": sum(row["residual_evaluations"] for row in rows),
            "jacobian_evaluations": sum(row["jacobian_evaluations"] for row in rows),
            "batch_width_max": max((row["batch_width"] for row in rows), default=0),
        }

    report = {
        "meta": {
            **_bench_config.bench_meta(quick),
            "benchmarks": [benchmark.name for benchmark in benchmarks],
            "strategies": list(strategies),
            "solver_options": {
                "restarts": solver_options.restarts,
                "max_iterations": solver_options.max_iterations,
                "time_limit": solver_options.time_limit,
                "batch": solver_options.batch,
            },
            "reduction_seconds_total": reduction_seconds,
        },
        "per_benchmark": per_benchmark,
        "per_strategy": per_strategy,
    }

    if "qclp" in strategies and "portfolio" in strategies:
        qclp_solved = {
            name
            for name, entry in per_benchmark.items()
            if entry["strategies"]["qclp"]["feasible"]
        }
        portfolio_solved = {
            name
            for name, entry in per_benchmark.items()
            if entry["strategies"]["portfolio"]["feasible"]
        }
        report["portfolio_vs_qclp"] = {
            "qclp_solved": sorted(qclp_solved),
            "portfolio_solved": sorted(portfolio_solved),
            "portfolio_covers_qclp": qclp_solved <= portfolio_solved,
            "qclp_median_seconds": per_strategy["qclp"]["median_seconds"],
            "portfolio_median_seconds": per_strategy["portfolio"]["median_seconds"],
            "portfolio_median_at_most_qclp": (
                per_strategy["portfolio"]["median_seconds"]
                <= per_strategy["qclp"]["median_seconds"]
            ),
        }
    return report


def measure_scheduler(
    quick: bool = True,
    limit: int | None = None,
    limit_variables: int = 8,
    solver_options: SolverOptions | None = None,
    verify: str = "exact",
) -> dict:
    """Scheduler-off vs scheduler-on wall-clock over the full engine path.

    Two passes over the suite, same programs, same solver budget, fresh
    engine each pass, one shared throwaway corpus:

    * pass "off" runs ``scheduler="record-only"`` — solve behaviour is
      byte-identical to ``"off"`` (recording happens after the response is
      assembled), and the pass doubles as the corpus warm-up;
    * pass "on" runs ``scheduler="on"`` against the corpus pass "off" wrote —
      the warm repeat run the scheduler is built to accelerate.

    Both passes request exact certificates, so the comparison also checks the
    safety model: predictions must not cost a single verified instance.
    """
    from repro.api import Engine, SynthesisRequest
    from repro.schedule import SolveCorpus

    if solver_options is None:
        solver_options = SolverOptions(restarts=1, max_iterations=150, time_limit=15.0)
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]

    def requests() -> list[SynthesisRequest]:
        built = []
        for benchmark in benchmarks:
            options = benchmark.options(upsilon=1) if quick else benchmark.options()
            options = dataclasses.replace(options, strategy="portfolio", verify=verify)
            built.append(
                SynthesisRequest(
                    program=benchmark.source,
                    precondition=benchmark.precondition,
                    objective=benchmark.objective(),
                    options=options,
                    request_id=benchmark.name,
                )
            )
        return built

    passes: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = os.path.join(tmp, "scheduler_corpus.jsonl")
        for label, mode in (("off", "record-only"), ("on", "on")):
            per: dict[str, dict] = {}
            with Engine(solver_options=solver_options, scheduler=mode, corpus=corpus_path) as engine:
                for request in requests():
                    start = time.perf_counter()
                    response = engine.synthesize(request)
                    seconds = time.perf_counter() - start
                    per[request.request_id] = {
                        "seconds": seconds,
                        "solve_seconds": response.timings.get("solve_seconds", 0.0),
                        "solved": response.status == "ok",
                        "verified": bool((response.verification or {}).get("verified")),
                        "strategy": response.strategy,
                        "predicted": response.timings.get("schedule_predicted", 0.0) > 0.0,
                        "stagger_seconds": response.timings.get("schedule_stagger_seconds", 0.0),
                    }
                stats = engine.stats()
            passes[label] = {
                "engine_scheduler": mode,
                "programs": len(per),
                "solved": sum(1 for row in per.values() if row["solved"]),
                "verified": sum(1 for row in per.values() if row["verified"]),
                "predicted": sum(1 for row in per.values() if row["predicted"]),
                "total_seconds": sum(row["seconds"] for row in per.values()),
                "solve_seconds": sum(row["solve_seconds"] for row in per.values()),
                "per_benchmark": per,
                "schedule_stats": {
                    key: value for key, value in stats.items() if key.startswith("schedule_")
                },
            }
        corpus_rows = len(SolveCorpus(corpus_path))

    off, on = passes["off"], passes["on"]
    return {
        "verify": verify,
        "comparison": (
            "pass 'off' (scheduler=record-only, solve behaviour identical to off) runs "
            "cold and warms the corpus; pass 'on' is the warm repeat run, so its "
            "wall-clock combines prediction gains with warm in-process caches"
        ),
        "corpus_rows": corpus_rows,
        "off": off,
        "on": on,
        "speedup": (off["total_seconds"] / on["total_seconds"]) if on["total_seconds"] else None,
        "solve_speedup": (
            (off["solve_seconds"] / on["solve_seconds"]) if on["solve_seconds"] else None
        ),
        "coverage_preserved": on["solved"] >= off["solved"] and on["verified"] >= off["verified"],
    }


def measure_batch(
    quick: bool = True,
    limit: int | None = None,
    limit_variables: int = 8,
    solver_options: SolverOptions | None = None,
) -> dict:
    """Batched qclp (``batch="on"``) vs the retired per-restart SciPy loop.

    Three qclp solves per suite program on one shared compiled problem:

    * ``batch="on"`` — the vectorised restart batch (the default);
    * ``batch="off"`` — the retired sequential SciPy loop, kept as the
      performance baseline the ``--min-batch-speedup`` gate measures against;
    * ``batch="rows"`` — the batched engine one member at a time, whose
      winning assignment must be *bit-identical* to ``"on"`` (lockstep row
      independence), which is the differential-determinism check.
    """
    if solver_options is None:
        solver_options = SolverOptions(restarts=1, max_iterations=150, time_limit=15.0)
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]

    per_benchmark: dict[str, dict] = {}
    for benchmark in benchmarks:
        options = benchmark.options(upsilon=1) if quick else benchmark.options()
        task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(), options)
        compile_problem(task.system)

        results: dict[str, object] = {}
        seconds: dict[str, float] = {}
        for mode in ("on", "off", "rows"):
            solver = make_solver("qclp", dataclasses.replace(solver_options, batch=mode))
            start = time.perf_counter()
            results[mode] = solver.solve(task.system)
            seconds[mode] = time.perf_counter() - start
        on, off, rows = results["on"], results["off"], results["rows"]
        per_benchmark[benchmark.name] = {
            "on_seconds": seconds["on"],
            "off_seconds": seconds["off"],
            "rows_seconds": seconds["rows"],
            "on_feasible": bool(on.feasible),
            "off_feasible": bool(off.feasible),
            # The determinism oracle: identical winning assignment (raw
            # floats), status and final violation between "on" and "rows".
            "fingerprint_match": (
                on.assignment == rows.assignment
                and on.status == rows.status
                and on.max_violation == rows.max_violation
            ),
        }

    entries = per_benchmark.values()
    on_total = sum(row["on_seconds"] for row in entries)
    off_total = sum(row["off_seconds"] for row in entries)
    on_solved = sum(1 for row in entries if row["on_feasible"])
    off_solved = sum(1 for row in entries if row["off_feasible"])
    matches = sum(1 for row in entries if row["fingerprint_match"])
    return {
        "strategy": "qclp",
        "programs": len(per_benchmark),
        "per_benchmark": per_benchmark,
        "on_total_seconds": on_total,
        "off_total_seconds": off_total,
        "speedup": (off_total / on_total) if on_total else None,
        "on_solved": on_solved,
        "off_solved": off_solved,
        "coverage_preserved": on_solved >= off_solved,
        "fingerprint_matches": matches,
        "fingerprints_deterministic": matches == len(per_benchmark),
    }


def append_history(report: dict, path: str) -> dict:
    """Append one compact trajectory row for this run to ``path`` (JSONL).

    ``BENCH_solvers.json`` is overwritten per revision; the history file
    accumulates, so regressions show as a series, not a diff.  Each row keeps
    just the shared meta block (minus the per-run resource dump), per-strategy
    totals and the RSS high-water of the run.
    """
    resources = _bench_config.resource_snapshot() or {}
    meta = report["meta"]
    row = {
        "bench": "solvers",
        "git_revision": meta.get("git_revision"),
        "timestamp_utc": meta.get("timestamp_utc"),
        "quick": meta.get("quick"),
        "cpus": meta.get("cpus"),
        "solver_options": meta.get("solver_options"),
        "rss_high_water_bytes": resources.get("rss_high_water_bytes"),
        "per_strategy": {
            name: {
                "solved": entry["solved"],
                "total": entry["total"],
                "median_seconds": entry["median_seconds"],
                "total_seconds": entry["total_seconds"],
            }
            for name, entry in report["per_strategy"].items()
        },
    }
    if "batch_vs_off" in report:
        row["batch_speedup"] = report["batch_vs_off"]["speedup"]
        row["batch_fingerprints_deterministic"] = report["batch_vs_off"][
            "fingerprints_deterministic"
        ]
    if "scheduler" in report:
        row["scheduler_speedup"] = report["scheduler"]["speedup"]
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return row


def main(argv: list[str] | None = None) -> int:
    _bench_config.start_resource_monitor()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: small benchmarks, multiplier degree 1")
    parser.add_argument("--strategies", default=",".join(DEFAULT_STRATEGIES),
                        help="comma-separated strategies to benchmark")
    parser.add_argument("--limit", type=int, default=None, help="only run the first N programs")
    parser.add_argument("--restarts", type=int, default=1)
    parser.add_argument("--max-iterations", type=int, default=150)
    parser.add_argument("--time-limit", type=float, default=15.0,
                        help="per-solve wall-clock budget in seconds")
    parser.add_argument("--output", default="BENCH_solvers.json",
                        help="write the JSON report here ('-' for stdout only)")
    parser.add_argument("--scheduler", action="store_true",
                        help="also compare the corpus scheduler off vs on (warm repeat run)")
    parser.add_argument("--min-scheduler-speedup", type=float, default=None, metavar="RATIO",
                        help="fail unless scheduler-on is at least RATIO x scheduler-off "
                             "wall-clock with coverage preserved (implies --scheduler)")
    parser.add_argument("--batch-compare", action="store_true",
                        help="also compare batched qclp against the retired per-restart "
                             "loop (batch='off') and replay determinism (batch='rows')")
    parser.add_argument("--min-batch-speedup", type=float, default=None, metavar="RATIO",
                        help="fail unless batched qclp is at least RATIO x faster than "
                             "batch='off' total wall-clock, with coverage preserved and "
                             "bit-identical on/rows fingerprints (implies --batch-compare)")
    parser.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                        help="append one compact per-run row here (JSONL trajectory)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending to the history file")
    args = parser.parse_args(argv)

    strategies = tuple(name.strip() for name in args.strategies.split(",") if name.strip())
    options = SolverOptions(
        restarts=args.restarts,
        max_iterations=args.max_iterations,
        time_limit=args.time_limit,
    )
    report = run(strategies=strategies, quick=args.quick, limit=args.limit, solver_options=options)

    failures: list[str] = []
    if args.batch_compare or args.min_batch_speedup is not None:
        batch = measure_batch(quick=args.quick, limit=args.limit, solver_options=options)
        report["batch_vs_off"] = batch
        speedup = batch["speedup"]
        print(
            f"[batch] qclp off {batch['off_total_seconds']:.2f}s -> "
            f"on {batch['on_total_seconds']:.2f}s "
            f"(speedup {speedup if speedup is None else round(speedup, 2)}x, "
            f"solved on {batch['on_solved']}/off {batch['off_solved']}, "
            f"fingerprints {batch['fingerprint_matches']}/{batch['programs']})",
            file=sys.stderr,
        )
        if args.min_batch_speedup is not None:
            if not batch["coverage_preserved"]:
                failures.append(
                    f"batched qclp lost coverage: solved {batch['on_solved']} "
                    f"(off {batch['off_solved']})"
                )
            if not batch["fingerprints_deterministic"]:
                mismatched = sorted(
                    name
                    for name, row in batch["per_benchmark"].items()
                    if not row["fingerprint_match"]
                )
                failures.append(f"batch on/rows fingerprints diverged: {mismatched}")
            if speedup is None or speedup < args.min_batch_speedup:
                failures.append(
                    f"batch speedup {speedup if speedup is None else round(speedup, 3)} "
                    f"below required {args.min_batch_speedup}"
                )
    if args.scheduler or args.min_scheduler_speedup is not None:
        scheduler = measure_scheduler(quick=args.quick, limit=args.limit, solver_options=options)
        report["scheduler"] = scheduler
        speedup = scheduler["speedup"]
        print(
            f"[scheduler] off {scheduler['off']['total_seconds']:.2f}s -> "
            f"on {scheduler['on']['total_seconds']:.2f}s "
            f"(speedup {speedup:.2f}x, predicted {scheduler['on']['predicted']}/"
            f"{scheduler['on']['programs']}, verified {scheduler['on']['verified']})",
            file=sys.stderr,
        )
        if args.min_scheduler_speedup is not None:
            if not scheduler["coverage_preserved"]:
                failures.append(
                    f"scheduler-on lost coverage: solved {scheduler['on']['solved']} "
                    f"(off {scheduler['off']['solved']}), verified {scheduler['on']['verified']} "
                    f"(off {scheduler['off']['verified']})"
                )
            if speedup is None or speedup < args.min_scheduler_speedup:
                failures.append(
                    f"scheduler speedup {speedup if speedup is None else round(speedup, 3)} "
                    f"below required {args.min_scheduler_speedup}"
                )

    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    if args.history and not args.no_history:
        append_history(report, args.history)
        print(f"appended trend row to {args.history}", file=sys.stderr)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
