"""Per-strategy Step-4 solver benchmarks over the suite registry.

For every suite program this script builds the Step 1-3 reduction once, then
solves the resulting quadratic system with each configured Step-4 strategy
(including the racing portfolio) under an identical budget, recording solve
wall-clock and feasibility.  It emits machine-readable JSON
(``BENCH_solvers.json`` by default) so the per-strategy performance trajectory
is tracked across PRs::

    python benchmarks/bench_solvers.py --quick             # CI preset
    python benchmarks/bench_solvers.py --output BENCH_solvers.json

The report's ``portfolio_vs_qclp`` section states the portfolio acceptance
criterion directly: the portfolio must solve every program the sequential
penalty solver solves, at equal-or-better median wall-clock.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import statistics
import sys
import tempfile
import time

import _bench_config

from repro.invariants.synthesis import build_task
from repro.solvers.base import SolverOptions
from repro.solvers.portfolio import make_solver
from repro.solvers.problem import compile_problem
from repro.suite.registry import all_benchmarks

DEFAULT_STRATEGIES = ("qclp", "gauss-newton", "alternating", "portfolio")


def _median(values: list[float]) -> float:
    # statistics.median, guarded for empty input (matches the bench tables).
    return statistics.median(values) if values else 0.0


def run(
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    quick: bool = True,
    limit: int | None = None,
    limit_variables: int = 8,
    solver_options: SolverOptions | None = None,
) -> dict:
    if solver_options is None:
        solver_options = SolverOptions(restarts=1, max_iterations=150, time_limit=15.0)
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]

    per_benchmark: dict[str, dict] = {}
    reduction_seconds = 0.0
    for benchmark in benchmarks:
        options = benchmark.options(upsilon=1) if quick else benchmark.options()
        start = time.perf_counter()
        task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(), options)
        compile_problem(task.system)  # shared IR: compiled once, outside the timed solves
        reduction_seconds += time.perf_counter() - start

        rows: dict[str, dict] = {}
        for strategy in strategies:
            solver = make_solver(strategy, solver_options)
            start = time.perf_counter()
            result = solver.solve(task.system)
            seconds = time.perf_counter() - start
            rows[strategy] = {
                "seconds": seconds,
                "feasible": bool(result.feasible),
                "status": result.status,
                "winner": result.strategy,
                "max_violation": result.max_violation,
            }
        per_benchmark[benchmark.name] = {"system_size": task.system.size, "strategies": rows}

    per_strategy: dict[str, dict] = {}
    for strategy in strategies:
        rows = [entry["strategies"][strategy] for entry in per_benchmark.values()]
        seconds = [row["seconds"] for row in rows]
        solved = sum(1 for row in rows if row["feasible"])
        per_strategy[strategy] = {
            "solved": solved,
            "total": len(rows),
            "feasibility_rate": solved / len(rows) if rows else 0.0,
            "median_seconds": _median(seconds),
            "total_seconds": sum(seconds),
        }

    report = {
        "meta": {
            **_bench_config.bench_meta(quick),
            "benchmarks": [benchmark.name for benchmark in benchmarks],
            "strategies": list(strategies),
            "solver_options": {
                "restarts": solver_options.restarts,
                "max_iterations": solver_options.max_iterations,
                "time_limit": solver_options.time_limit,
            },
            "reduction_seconds_total": reduction_seconds,
        },
        "per_benchmark": per_benchmark,
        "per_strategy": per_strategy,
    }

    if "qclp" in strategies and "portfolio" in strategies:
        qclp_solved = {
            name
            for name, entry in per_benchmark.items()
            if entry["strategies"]["qclp"]["feasible"]
        }
        portfolio_solved = {
            name
            for name, entry in per_benchmark.items()
            if entry["strategies"]["portfolio"]["feasible"]
        }
        report["portfolio_vs_qclp"] = {
            "qclp_solved": sorted(qclp_solved),
            "portfolio_solved": sorted(portfolio_solved),
            "portfolio_covers_qclp": qclp_solved <= portfolio_solved,
            "qclp_median_seconds": per_strategy["qclp"]["median_seconds"],
            "portfolio_median_seconds": per_strategy["portfolio"]["median_seconds"],
            "portfolio_median_at_most_qclp": (
                per_strategy["portfolio"]["median_seconds"]
                <= per_strategy["qclp"]["median_seconds"]
            ),
        }
    return report


def measure_scheduler(
    quick: bool = True,
    limit: int | None = None,
    limit_variables: int = 8,
    solver_options: SolverOptions | None = None,
    verify: str = "exact",
) -> dict:
    """Scheduler-off vs scheduler-on wall-clock over the full engine path.

    Two passes over the suite, same programs, same solver budget, fresh
    engine each pass, one shared throwaway corpus:

    * pass "off" runs ``scheduler="record-only"`` — solve behaviour is
      byte-identical to ``"off"`` (recording happens after the response is
      assembled), and the pass doubles as the corpus warm-up;
    * pass "on" runs ``scheduler="on"`` against the corpus pass "off" wrote —
      the warm repeat run the scheduler is built to accelerate.

    Both passes request exact certificates, so the comparison also checks the
    safety model: predictions must not cost a single verified instance.
    """
    from repro.api import Engine, SynthesisRequest
    from repro.schedule import SolveCorpus

    if solver_options is None:
        solver_options = SolverOptions(restarts=1, max_iterations=150, time_limit=15.0)
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]

    def requests() -> list[SynthesisRequest]:
        built = []
        for benchmark in benchmarks:
            options = benchmark.options(upsilon=1) if quick else benchmark.options()
            options = dataclasses.replace(options, strategy="portfolio", verify=verify)
            built.append(
                SynthesisRequest(
                    program=benchmark.source,
                    precondition=benchmark.precondition,
                    objective=benchmark.objective(),
                    options=options,
                    request_id=benchmark.name,
                )
            )
        return built

    passes: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = os.path.join(tmp, "scheduler_corpus.jsonl")
        for label, mode in (("off", "record-only"), ("on", "on")):
            per: dict[str, dict] = {}
            with Engine(solver_options=solver_options, scheduler=mode, corpus=corpus_path) as engine:
                for request in requests():
                    start = time.perf_counter()
                    response = engine.synthesize(request)
                    seconds = time.perf_counter() - start
                    per[request.request_id] = {
                        "seconds": seconds,
                        "solve_seconds": response.timings.get("solve_seconds", 0.0),
                        "solved": response.status == "ok",
                        "verified": bool((response.verification or {}).get("verified")),
                        "strategy": response.strategy,
                        "predicted": response.timings.get("schedule_predicted", 0.0) > 0.0,
                        "stagger_seconds": response.timings.get("schedule_stagger_seconds", 0.0),
                    }
                stats = engine.stats()
            passes[label] = {
                "engine_scheduler": mode,
                "programs": len(per),
                "solved": sum(1 for row in per.values() if row["solved"]),
                "verified": sum(1 for row in per.values() if row["verified"]),
                "predicted": sum(1 for row in per.values() if row["predicted"]),
                "total_seconds": sum(row["seconds"] for row in per.values()),
                "solve_seconds": sum(row["solve_seconds"] for row in per.values()),
                "per_benchmark": per,
                "schedule_stats": {
                    key: value for key, value in stats.items() if key.startswith("schedule_")
                },
            }
        corpus_rows = len(SolveCorpus(corpus_path))

    off, on = passes["off"], passes["on"]
    return {
        "verify": verify,
        "comparison": (
            "pass 'off' (scheduler=record-only, solve behaviour identical to off) runs "
            "cold and warms the corpus; pass 'on' is the warm repeat run, so its "
            "wall-clock combines prediction gains with warm in-process caches"
        ),
        "corpus_rows": corpus_rows,
        "off": off,
        "on": on,
        "speedup": (off["total_seconds"] / on["total_seconds"]) if on["total_seconds"] else None,
        "solve_speedup": (
            (off["solve_seconds"] / on["solve_seconds"]) if on["solve_seconds"] else None
        ),
        "coverage_preserved": on["solved"] >= off["solved"] and on["verified"] >= off["verified"],
    }


def main(argv: list[str] | None = None) -> int:
    _bench_config.start_resource_monitor()
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: small benchmarks, multiplier degree 1")
    parser.add_argument("--strategies", default=",".join(DEFAULT_STRATEGIES),
                        help="comma-separated strategies to benchmark")
    parser.add_argument("--limit", type=int, default=None, help="only run the first N programs")
    parser.add_argument("--restarts", type=int, default=1)
    parser.add_argument("--max-iterations", type=int, default=150)
    parser.add_argument("--time-limit", type=float, default=15.0,
                        help="per-solve wall-clock budget in seconds")
    parser.add_argument("--output", default="BENCH_solvers.json",
                        help="write the JSON report here ('-' for stdout only)")
    parser.add_argument("--scheduler", action="store_true",
                        help="also compare the corpus scheduler off vs on (warm repeat run)")
    parser.add_argument("--min-scheduler-speedup", type=float, default=None, metavar="RATIO",
                        help="fail unless scheduler-on is at least RATIO x scheduler-off "
                             "wall-clock with coverage preserved (implies --scheduler)")
    args = parser.parse_args(argv)

    strategies = tuple(name.strip() for name in args.strategies.split(",") if name.strip())
    options = SolverOptions(
        restarts=args.restarts,
        max_iterations=args.max_iterations,
        time_limit=args.time_limit,
    )
    report = run(strategies=strategies, quick=args.quick, limit=args.limit, solver_options=options)

    failures: list[str] = []
    if args.scheduler or args.min_scheduler_speedup is not None:
        scheduler = measure_scheduler(quick=args.quick, limit=args.limit, solver_options=options)
        report["scheduler"] = scheduler
        speedup = scheduler["speedup"]
        print(
            f"[scheduler] off {scheduler['off']['total_seconds']:.2f}s -> "
            f"on {scheduler['on']['total_seconds']:.2f}s "
            f"(speedup {speedup:.2f}x, predicted {scheduler['on']['predicted']}/"
            f"{scheduler['on']['programs']}, verified {scheduler['on']['verified']})",
            file=sys.stderr,
        )
        if args.min_scheduler_speedup is not None:
            if not scheduler["coverage_preserved"]:
                failures.append(
                    f"scheduler-on lost coverage: solved {scheduler['on']['solved']} "
                    f"(off {scheduler['off']['solved']}), verified {scheduler['on']['verified']} "
                    f"(off {scheduler['off']['verified']})"
                )
            if speedup is None or speedup < args.min_scheduler_speedup:
                failures.append(
                    f"scheduler speedup {speedup if speedup is None else round(speedup, 3)} "
                    f"below required {args.min_scheduler_speedup}"
                )

    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
