"""Per-strategy Step-4 solver benchmarks over the suite registry.

For every suite program this script builds the Step 1-3 reduction once, then
solves the resulting quadratic system with each configured Step-4 strategy
(including the racing portfolio) under an identical budget, recording solve
wall-clock and feasibility.  It emits machine-readable JSON
(``BENCH_solvers.json`` by default) so the per-strategy performance trajectory
is tracked across PRs::

    python benchmarks/bench_solvers.py --quick             # CI preset
    python benchmarks/bench_solvers.py --output BENCH_solvers.json

The report's ``portfolio_vs_qclp`` section states the portfolio acceptance
criterion directly: the portfolio must solve every program the sequential
penalty solver solves, at equal-or-better median wall-clock.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time

import _bench_config  # noqa: F401  (sys.path setup)

from repro.invariants.synthesis import build_task
from repro.solvers.base import SolverOptions
from repro.solvers.portfolio import make_solver
from repro.solvers.problem import compile_problem
from repro.suite.registry import all_benchmarks

DEFAULT_STRATEGIES = ("qclp", "gauss-newton", "alternating", "portfolio")


def _median(values: list[float]) -> float:
    # statistics.median, guarded for empty input (matches the bench tables).
    return statistics.median(values) if values else 0.0


def run(
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    quick: bool = True,
    limit: int | None = None,
    limit_variables: int = 8,
    solver_options: SolverOptions | None = None,
) -> dict:
    if solver_options is None:
        solver_options = SolverOptions(restarts=1, max_iterations=150, time_limit=15.0)
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]

    per_benchmark: dict[str, dict] = {}
    reduction_seconds = 0.0
    for benchmark in benchmarks:
        options = benchmark.options(upsilon=1) if quick else benchmark.options()
        start = time.perf_counter()
        task = build_task(benchmark.source, benchmark.precondition, benchmark.objective(), options)
        compile_problem(task.system)  # shared IR: compiled once, outside the timed solves
        reduction_seconds += time.perf_counter() - start

        rows: dict[str, dict] = {}
        for strategy in strategies:
            solver = make_solver(strategy, solver_options)
            start = time.perf_counter()
            result = solver.solve(task.system)
            seconds = time.perf_counter() - start
            rows[strategy] = {
                "seconds": seconds,
                "feasible": bool(result.feasible),
                "status": result.status,
                "winner": result.strategy,
                "max_violation": result.max_violation,
            }
        per_benchmark[benchmark.name] = {"system_size": task.system.size, "strategies": rows}

    per_strategy: dict[str, dict] = {}
    for strategy in strategies:
        rows = [entry["strategies"][strategy] for entry in per_benchmark.values()]
        seconds = [row["seconds"] for row in rows]
        solved = sum(1 for row in rows if row["feasible"])
        per_strategy[strategy] = {
            "solved": solved,
            "total": len(rows),
            "feasibility_rate": solved / len(rows) if rows else 0.0,
            "median_seconds": _median(seconds),
            "total_seconds": sum(seconds),
        }

    report = {
        "meta": {
            "python": platform.python_version(),
            "quick": quick,
            "benchmarks": [benchmark.name for benchmark in benchmarks],
            "strategies": list(strategies),
            "solver_options": {
                "restarts": solver_options.restarts,
                "max_iterations": solver_options.max_iterations,
                "time_limit": solver_options.time_limit,
            },
            "reduction_seconds_total": reduction_seconds,
        },
        "per_benchmark": per_benchmark,
        "per_strategy": per_strategy,
    }

    if "qclp" in strategies and "portfolio" in strategies:
        qclp_solved = {
            name
            for name, entry in per_benchmark.items()
            if entry["strategies"]["qclp"]["feasible"]
        }
        portfolio_solved = {
            name
            for name, entry in per_benchmark.items()
            if entry["strategies"]["portfolio"]["feasible"]
        }
        report["portfolio_vs_qclp"] = {
            "qclp_solved": sorted(qclp_solved),
            "portfolio_solved": sorted(portfolio_solved),
            "portfolio_covers_qclp": qclp_solved <= portfolio_solved,
            "qclp_median_seconds": per_strategy["qclp"]["median_seconds"],
            "portfolio_median_seconds": per_strategy["portfolio"]["median_seconds"],
            "portfolio_median_at_most_qclp": (
                per_strategy["portfolio"]["median_seconds"]
                <= per_strategy["qclp"]["median_seconds"]
            ),
        }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: small benchmarks, multiplier degree 1")
    parser.add_argument("--strategies", default=",".join(DEFAULT_STRATEGIES),
                        help="comma-separated strategies to benchmark")
    parser.add_argument("--limit", type=int, default=None, help="only run the first N programs")
    parser.add_argument("--restarts", type=int, default=1)
    parser.add_argument("--max-iterations", type=int, default=150)
    parser.add_argument("--time-limit", type=float, default=15.0,
                        help="per-solve wall-clock budget in seconds")
    parser.add_argument("--output", default="BENCH_solvers.json",
                        help="write the JSON report here ('-' for stdout only)")
    args = parser.parse_args(argv)

    strategies = tuple(name.strip() for name in args.strategies.split(",") if name.strip())
    report = run(
        strategies=strategies,
        quick=args.quick,
        limit=args.limit,
        solver_options=SolverOptions(
            restarts=args.restarts,
            max_iterations=args.max_iterations,
            time_limit=args.time_limit,
        ),
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
