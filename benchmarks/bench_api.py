"""Service-API overhead benchmark: Engine submit/stream vs direct calls.

For the quick-preset suite subset this script measures, per benchmark:

* **direct** — ``weak_inv_synth`` with an explicit solver (the historical
  entry point, which now also routes through the default engine),
* **engine** — the same work as typed requests streamed through
  ``Engine.map``,
* **codec**  — request/response JSON encode + decode + validate throughput,

and reports the per-request envelope overhead (engine wall-clock minus the
solve + reduction it wraps).  Emits machine-readable JSON
(``BENCH_api.json`` by default) so the overhead trajectory is tracked across
PRs::

    python benchmarks/bench_api.py --quick --limit 6
    python benchmarks/bench_api.py --output BENCH_api.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import _bench_config

from repro.api import Engine, SynthesisRequest, SynthesisResponse
from repro.api.engine import reset_default_engine
from repro.invariants.synthesis import weak_inv_synth
from repro.solvers.base import SolverOptions
from repro.solvers.qclp import PenaltyQCLPSolver
from repro.suite.registry import all_benchmarks

SOLVE_BUDGET = SolverOptions(restarts=1, max_iterations=100, time_limit=10.0)


def _requests(benchmarks) -> list[SynthesisRequest]:
    return [
        SynthesisRequest(
            program=benchmark.source,
            mode="weak",
            precondition=benchmark.precondition,
            objective=benchmark.objective(),
            options=benchmark.options(upsilon=1),
            solver_options=SOLVE_BUDGET,
            request_id=benchmark.name,
        )
        for benchmark in benchmarks
    ]


def run(quick: bool = True, limit: int | None = None, limit_variables: int = 8, codec_repeat: int = 50) -> dict:
    benchmarks = all_benchmarks()
    if quick:
        benchmarks = [b for b in benchmarks if b.variable_count() <= limit_variables]
    if limit is not None:
        benchmarks = benchmarks[:limit]

    # -- direct path: the paper-named function, fresh default engine ------------
    reset_default_engine()
    direct_seconds: dict[str, float] = {}
    start_direct = time.perf_counter()
    for benchmark in benchmarks:
        start = time.perf_counter()
        weak_inv_synth(
            benchmark.source,
            benchmark.precondition,
            benchmark.objective(),
            benchmark.options(upsilon=1),
            solver=PenaltyQCLPSolver(SOLVE_BUDGET),
        )
        direct_seconds[benchmark.name] = time.perf_counter() - start
    direct_total = time.perf_counter() - start_direct
    reset_default_engine()

    # -- engine path: typed requests streamed through Engine.map ----------------
    requests = _requests(benchmarks)
    engine_seconds: dict[str, float] = {}
    envelope_overhead: dict[str, float] = {}
    start_engine = time.perf_counter()
    with Engine() as engine:
        for response in engine.map(requests):
            name = response.request_id
            engine_seconds[name] = response.timings["total_seconds"]
            inner = response.timings.get("reduction_seconds", 0.0) + response.timings.get("solve_seconds", 0.0)
            envelope_overhead[name] = response.timings["total_seconds"] - inner
    engine_total = time.perf_counter() - start_engine

    # -- codec path: JSON round-trip throughput ---------------------------------
    codec = {}
    encode_times, decode_times = [], []
    for request in requests:
        for _ in range(codec_repeat):
            start = time.perf_counter()
            document = request.to_json()
            encode_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            SynthesisRequest.from_json(document)
            decode_times.append(time.perf_counter() - start)
    codec["request_encode_median_us"] = statistics.median(encode_times) * 1e6
    codec["request_decode_validate_median_us"] = statistics.median(decode_times) * 1e6

    per_benchmark = {
        name: {
            "direct_seconds": direct_seconds[name],
            "engine_seconds": engine_seconds[name],
            "envelope_overhead_seconds": envelope_overhead[name],
        }
        for name in direct_seconds
    }
    overheads = list(envelope_overhead.values())
    report = {
        "benchmark": "service-api-overhead",
        "meta": _bench_config.bench_meta(quick),
        "quick": quick,
        "benchmarks": per_benchmark,
        "summary": {
            "programs": len(benchmarks),
            "direct_total_seconds": direct_total,
            "engine_total_seconds": engine_total,
            "engine_vs_direct_ratio": engine_total / direct_total if direct_total else None,
            "envelope_overhead_median_ms": statistics.median(overheads) * 1e3 if overheads else None,
            "envelope_overhead_max_ms": max(overheads) * 1e3 if overheads else None,
        },
        "codec": codec,
    }
    return report


def main(argv: list[str] | None = None) -> int:
    _bench_config.start_resource_monitor()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", default=True, help="small benchmarks only (default)")
    parser.add_argument("--full", dest="quick", action="store_false", help="include the large benchmarks")
    parser.add_argument("--limit", type=int, default=None, help="only the first N programs")
    parser.add_argument("--output", default="BENCH_api.json", help="write the JSON report here")
    args = parser.parse_args(argv)

    report = run(quick=args.quick, limit=args.limit)
    summary = report["summary"]
    print(f"programs            : {summary['programs']}")
    print(f"direct total        : {summary['direct_total_seconds']:.2f}s")
    print(f"engine total        : {summary['engine_total_seconds']:.2f}s")
    print(f"engine/direct ratio : {summary['engine_vs_direct_ratio']:.3f}")
    print(f"envelope overhead   : median {summary['envelope_overhead_median_ms']:.2f}ms, "
          f"max {summary['envelope_overhead_max_ms']:.2f}ms per request")
    print(f"request JSON encode : {report['codec']['request_encode_median_us']:.0f}us median")
    print(f"request JSON decode : {report['codec']['request_decode_validate_median_us']:.0f}us median (validated)")
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
