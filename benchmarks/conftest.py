"""Pytest configuration for the benchmark harness (sys.path setup only)."""

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)
