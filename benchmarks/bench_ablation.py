"""Ablation benchmarks: design choices called out in DESIGN.md.

* Putinar vs Handelman/Schweighofer translation (Remark 2),
* the effect of the technical parameter Upsilon on |S|,
* the Farkas/linear baseline of [Colon et al. 2003] (degree-1 templates),
  reproducing the paper's point that linear invariant generation cannot even
  express the polynomial targets of these benchmarks.
"""

from __future__ import annotations

import pytest

from repro.invariants.handelman import handelman_translate
from repro.invariants.putinar import putinar_translate
from repro.invariants.synthesis import SynthesisOptions, build_task
from repro.solvers.farkas import can_express_target, linear_baseline_system
from repro.suite.registry import get_benchmark

ABLATION_NAMES = ["freire1", "sqrt", "petter"]


@pytest.mark.parametrize("name", ABLATION_NAMES)
def test_ablation_putinar_vs_handelman(benchmark, name):
    suite_benchmark = get_benchmark(name)
    task = build_task(
        suite_benchmark.source,
        suite_benchmark.precondition,
        suite_benchmark.objective(),
        suite_benchmark.options(upsilon=1),
    )

    def translate_both():
        putinar = putinar_translate(task.pairs, upsilon=1)
        handelman = handelman_translate(task.pairs)
        return putinar, handelman

    putinar_system, handelman_system = benchmark.pedantic(
        translate_both, rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["putinar_size"] = putinar_system.size
    benchmark.extra_info["handelman_size"] = handelman_system.size
    assert handelman_system.size < putinar_system.size


@pytest.mark.parametrize("upsilon", [1, 2, 3])
def test_ablation_upsilon_growth(benchmark, upsilon):
    suite_benchmark = get_benchmark("petter")

    def reduce():
        return build_task(
            suite_benchmark.source,
            suite_benchmark.precondition,
            suite_benchmark.objective(),
            SynthesisOptions(degree=2, upsilon=upsilon),
        )

    task = benchmark.pedantic(reduce, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["upsilon"] = upsilon
    benchmark.extra_info["system_size"] = task.system.size
    assert task.system.size > 0


@pytest.mark.parametrize("name", ["petter", "sqrt", "cohencu"])
def test_ablation_linear_baseline_cannot_express_targets(benchmark, name):
    """The Colon-et-al-style baseline (degree-1 templates) cannot express the paper's
    polynomial targets, reproducing the comparison argument of Remark 11."""
    suite_benchmark = get_benchmark(name)
    task = build_task(
        suite_benchmark.source,
        suite_benchmark.precondition,
        suite_benchmark.objective(),
        suite_benchmark.options(upsilon=1),
    )

    def build_baseline():
        return linear_baseline_system(task.cfg, task.precondition)

    templates, system = benchmark.pedantic(build_baseline, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["farkas_size"] = system.size
    quadratic_target = suite_benchmark.target_polynomial()
    if quadratic_target is not None and suite_benchmark.target_kind == "label":
        assert not can_express_target(
            templates, quadratic_target, suite_benchmark.target_function, suite_benchmark.target_label
        )
