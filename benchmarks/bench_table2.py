"""Table 2 benchmarks: the Step 1-3 reduction on the non-recursive suite.

Each benchmark measures the wall-clock time of the full reduction (parsing,
CFG construction, templates, constraint pairs, Putinar translation) and
records the reproduced structural columns of Table 2 (|V|, number of
constraint pairs, |S|) in the pytest-benchmark ``extra_info`` so that the
report carries the paper-vs-measured comparison.
"""

from __future__ import annotations

import pytest

from _bench_config import FULL_MODE, benchmark_options
from repro.invariants.synthesis import build_task
from repro.suite.registry import benchmarks_by_category, get_benchmark

QUICK_NAMES = [
    "freire1",
    "freire2",
    "petter",
    "sqrt",
    "cohencu",
    "mannadiv",
    "prodbin",
    "divbin",
    "cohendiv",
    "lcm2",
]

NAMES = (
    [benchmark.name for benchmark in benchmarks_by_category("nonrecursive")]
    if FULL_MODE
    else QUICK_NAMES
)


@pytest.mark.parametrize("name", NAMES)
def test_table2_reduction(benchmark, name):
    suite_benchmark = get_benchmark(name)
    options = benchmark_options(suite_benchmark)

    def reduce():
        return build_task(
            suite_benchmark.source,
            suite_benchmark.precondition,
            suite_benchmark.objective(),
            options,
        )

    task = benchmark.pedantic(reduce, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["variables"] = task.cfg.variable_count()
    benchmark.extra_info["constraint_pairs"] = len(task.pairs)
    benchmark.extra_info["system_size"] = task.system.size
    benchmark.extra_info["degree"] = options.degree
    benchmark.extra_info["upsilon"] = options.upsilon
    if suite_benchmark.paper is not None:
        benchmark.extra_info["paper_system_size"] = suite_benchmark.paper.system_size
        benchmark.extra_info["paper_runtime_seconds"] = suite_benchmark.paper.runtime_seconds
    assert task.system.size > 0
    if suite_benchmark.paper is not None and suite_benchmark.name != "merge-sort":
        assert task.cfg.variable_count() == suite_benchmark.paper.variables
