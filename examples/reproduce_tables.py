#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables (a thin wrapper over ``repro.bench``).

Run with::

    python examples/reproduce_tables.py            # quick preset (small benchmarks)
    python examples/reproduce_tables.py --full     # the paper's full parameter set

The quick preset keeps the total runtime to a couple of minutes; the full run
reproduces every row of Tables 2 and 3 and can take tens of minutes on the
largest instances (euclidex3, merge-sort), mirroring the runtimes the paper
reports for its Java implementation.
"""

from __future__ import annotations

import argparse

from repro.bench.runner import measure_many, quick_subset
from repro.bench.tables import render_measurements, render_table1
from repro.suite.registry import benchmarks_by_category


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run the paper's full parameter set")
    parser.add_argument("--solve", action="store_true", help="also run the Step-4 solver per benchmark")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for the Step-4 solves (0 = sequential)")
    args = parser.parse_args()
    quick = not args.full

    print(render_table1())
    print()

    table2 = benchmarks_by_category("nonrecursive")
    table3 = benchmarks_by_category("reinforcement") + benchmarks_by_category("recursive")
    if quick:
        table2 = quick_subset(table2)
        table3 = quick_subset(table3)

    measurements2 = measure_many(table2, solve=args.solve, quick=quick, workers=args.workers)
    print()
    print(render_measurements(measurements2, "Table 2 - non-recursive benchmarks"))

    measurements3 = measure_many(table3, solve=args.solve, quick=quick, workers=args.workers)
    print()
    print(render_measurements(measurements3, "Table 3 - recursive and RL benchmarks"))


if __name__ == "__main__":
    main()
