"""Batch synthesis: run the whole benchmark suite through one pipeline call.

The :class:`repro.pipeline.SynthesisPipeline` accepts many (program,
precondition, objective) jobs at once, deduplicates shared Step 1-3
reductions through its task cache, fans the numeric Step-4 solves out across
a process pool and streams per-job results back in submission order::

    PYTHONPATH=src python examples/batch_synthesis.py              # quick preset
    PYTHONPATH=src python examples/batch_synthesis.py --workers 8  # parallel solves
    PYTHONPATH=src python examples/batch_synthesis.py --full       # paper parameters

Every result is identical to what a sequential ``weak_inv_synth`` call would
produce for the same job — batching changes the throughput, not the answers.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.pipeline import SynthesisPipeline, job_from_benchmark
from repro.solvers.base import SolverOptions
from repro.solvers.portfolio import parse_strategy, strategy_names
from repro.suite.registry import all_benchmarks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Synthesize invariants for the whole suite in one batch.")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes for the Step-4 solves (0 = sequential)")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full parameters instead of the quick preset")
    parser.add_argument("--limit", type=int, default=None,
                        help="only run the first N suite programs")
    parser.add_argument("--translation", choices=["putinar", "handelman"],
                        help="Step-3 translation scheme (default: the paper's Putinar encoding)")
    parser.add_argument("--strategy",
                        help="Step-4 strategy: one of " + ", ".join(strategy_names())
                        + ", 'portfolio', or a comma-separated list to race")
    args = parser.parse_args(argv)

    benchmarks = all_benchmarks()
    if args.limit is not None:
        benchmarks = benchmarks[: args.limit]

    overrides = parse_strategy(args.strategy)
    if args.translation:
        overrides["translation"] = args.translation

    # One job per suite program; the quick preset (multiplier degree 1) keeps
    # every reduction cheap enough for a laptop run of the entire registry.
    jobs = [
        job_from_benchmark(benchmark, quick=not args.full, **overrides)
        for benchmark in benchmarks
    ]

    # No explicit solver: each job's Step-4 back-end follows its options'
    # strategy/portfolio knobs under a short per-job budget.
    pipeline = SynthesisPipeline(
        workers=args.workers,
        solver_options=SolverOptions(restarts=1, max_iterations=200, time_limit=60.0),
    )

    print(f"running {len(jobs)} synthesis jobs "
          f"({'full' if args.full else 'quick'} preset, workers={args.workers})\n")
    start = time.perf_counter()
    succeeded = 0
    for outcome in pipeline.stream(jobs):
        if not outcome.ok:
            first_error_line = outcome.error.strip().splitlines()[-1]
            print(f"  {outcome.job.name:28s} ERROR: {first_error_line}")
            continue
        result = outcome.result
        status = result.solver_status
        if result.success:
            succeeded += 1
        label = "invariant" if result.success else "no invariant"
        timing = f"reduce={outcome.reduction_seconds:.2f}s solve={outcome.solve_seconds:.2f}s"
        cached = " [cached reduction]" if outcome.from_cache else ""
        winner = f" via {result.strategy}" if result.strategy else ""
        print(f"  {outcome.job.name:28s} |S|={result.system_size:<5d} {timing}  {label} ({status}{winner}){cached}")

    elapsed = time.perf_counter() - start
    stats = pipeline.cache.stats()
    print(f"\n{succeeded}/{len(jobs)} jobs produced an invariant in {elapsed:.1f}s "
          f"(task cache: {int(stats['misses'])} reductions built, {int(stats['hits'])} reused)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
