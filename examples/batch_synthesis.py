"""Batch synthesis: stream the whole benchmark suite through one Engine.

The :class:`repro.api.Engine` accepts many typed
:class:`~repro.api.request.SynthesisRequest` values at once, deduplicates
shared Step 1-3 reductions through its task cache, fans the numeric Step-4
solves out across a worker pool and streams per-request responses back **as
they finish** (out of submission order, each stamped with its submission
id)::

    PYTHONPATH=src python examples/batch_synthesis.py              # quick preset
    PYTHONPATH=src python examples/batch_synthesis.py --workers 8  # parallel solves
    PYTHONPATH=src python examples/batch_synthesis.py --full       # paper parameters

Every result is identical to what a sequential ``weak_inv_synth`` call would
produce for the same request — batching changes the throughput, not the
answers.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import Engine, SynthesisRequest
from repro.pipeline import job_from_benchmark
from repro.solvers.base import SolverOptions
from repro.solvers.portfolio import parse_strategy, strategy_names
from repro.suite.registry import all_benchmarks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Synthesize invariants for the whole suite in one batch.")
    parser.add_argument("--workers", type=int, default=0,
                        help="concurrent requests (0 = sequential)")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full parameters instead of the quick preset")
    parser.add_argument("--limit", type=int, default=None,
                        help="only run the first N suite programs")
    parser.add_argument("--translation", choices=["putinar", "handelman"],
                        help="Step-3 translation scheme (default: the paper's Putinar encoding)")
    parser.add_argument("--strategy",
                        help="Step-4 strategy: one of " + ", ".join(strategy_names())
                        + ", 'portfolio', or a comma-separated list to race")
    args = parser.parse_args(argv)

    benchmarks = all_benchmarks()
    if args.limit is not None:
        benchmarks = benchmarks[: args.limit]

    overrides = parse_strategy(args.strategy)
    if args.translation:
        overrides["translation"] = args.translation

    # One typed request per suite program; the quick preset (multiplier degree
    # 1) keeps every reduction cheap enough for a laptop run of the registry.
    requests = []
    for benchmark in benchmarks:
        job = job_from_benchmark(benchmark, quick=not args.full, **overrides)
        requests.append(
            SynthesisRequest(
                program=job.source,
                mode="weak",
                precondition=job.precondition,
                objective=job.objective,
                options=job.options,
                request_id=job.name,
            )
        )

    print(f"running {len(requests)} synthesis requests "
          f"({'full' if args.full else 'quick'} preset, workers={args.workers})\n")
    start = time.perf_counter()
    succeeded = 0
    # No explicit solver: each request's Step-4 back-end follows its options'
    # strategy/portfolio knobs under a short per-request budget.
    with Engine(workers=args.workers,
                solver_options=SolverOptions(restarts=1, max_iterations=200, time_limit=60.0)) as engine:
        for response in engine.map(requests):
            tag = f"#{response.submission_id:<3d} {response.request_id:24s}"
            if not response.ok:
                reason = (response.error.message.splitlines() or ["<no message>"])[0]
                print(f"  {tag} ERROR: {response.error.type}: {reason}")
                continue
            if response.success:
                succeeded += 1
            label = "invariant" if response.success else "no invariant"
            timing = (f"reduce={response.timings['reduction_seconds']:.2f}s "
                      f"solve={response.timings['solve_seconds']:.2f}s")
            cached = " [cached reduction]" if response.from_cache else ""
            winner = f" via {response.strategy}" if response.strategy else ""
            print(f"  {tag} |S|={response.system_size:<5d} {timing}  "
                  f"{label} ({response.solver_status}{winner}){cached}")

        elapsed = time.perf_counter() - start
        stats = engine.stats()
    print(f"\n{succeeded}/{len(requests)} requests produced an invariant in {elapsed:.1f}s "
          f"(task cache: {int(stats['misses'])} reductions built, {int(stats['hits'])} reused)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
