#!/usr/bin/env python3
"""Recursive programs and post-condition templates (Section 4 of the paper).

The recursive non-deterministic summation program of Figure 4 returns the sum
of an arbitrary subset of ``1..n``.  The paper's goal is the post-condition
``ret < 0.5*n^2 + 0.5*n + 1``.  This script shows the recursive pipeline:

* the post-condition template mu(rsum) of Example 11,
* the call-site constraint of Example 12 (rule (c')),
* the post-condition consecution constraints of Example 13,
* a dynamic check that the desired post-condition really holds on every
  simulated run.

Run with::

    python examples/recursive_postconditions.py
"""

from __future__ import annotations

from fractions import Fraction

from repro import Interpreter, SynthesisOptions, build_cfg, build_task, parse_program
from repro.polynomial import parse_polynomial
from repro.semantics.scheduler import RandomScheduler
from repro.spec import TargetPostconditionObjective
from repro.suite.recursive import RECURSIVE_SUM_SOURCE


def main() -> None:
    print("=== Recursive program (Figure 4) ===")
    print(RECURSIVE_SUM_SOURCE.strip())

    objective = TargetPostconditionObjective(
        function="recursive_sum",
        target=parse_polynomial("0.5*n_init^2 + 0.5*n_init + 1 - ret_recursive_sum"),
    )
    task = build_task(
        RECURSIVE_SUM_SOURCE,
        {"recursive_sum": {1: "n >= 0"}},
        objective,
        SynthesisOptions(degree=2, upsilon=2),
    )

    print("\n=== Step 1.a: post-condition template (Example 11) ===")
    post = task.templates.post_entry_for("recursive_sum")
    print(f"  variables : {post.variables}")
    print(f"  template  : {post.conjunct_polynomial(0)} > 0")

    print("\n=== Step 2.a / 2.b: constraint pairs introduced by recursion ===")
    for pair in task.pairs:
        kind = pair.name.split(":", 1)[0]
        if kind in ("call", "post"):
            print(f"  [{kind}] {pair.name}: {pair.assumption_count} assumptions")

    counts = task.system.counts()
    print("\n=== Reduction statistics ===")
    print(f"  constraint pairs     : {len(task.pairs)}")
    print(f"  quadratic system |S| : {task.system.size}")
    print(f"  unknowns             : {counts['variables']}")
    print("  (the paper reports |S| = 1700 for this benchmark)")

    print("\n=== Dynamic check of the desired post-condition ===")
    cfg = build_cfg(parse_program(RECURSIVE_SUM_SOURCE))
    interpreter = Interpreter(cfg, scheduler=RandomScheduler(seed=11))
    worst_margin = None
    for n in range(0, 20):
        result = interpreter.run({"n": n})
        bound = Fraction(1, 2) * n * n + Fraction(1, 2) * n + 1
        margin = bound - result.return_value
        worst_margin = margin if worst_margin is None else min(worst_margin, margin)
        assert margin > 0, f"post-condition violated for n={n}"
    print(f"  checked n = 0..19: post-condition holds, smallest margin {float(worst_margin):g}")


if __name__ == "__main__":
    main()
