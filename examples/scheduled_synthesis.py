#!/usr/bin/env python3
"""Corpus-driven scheduling: warm a solve corpus, then watch a repeat run predict.

The engine's portfolio (PR 2) races every Step-4 strategy on every request,
and ``degree="auto"`` (PR 4) always ladders from d = 1.  The scheduler
(:mod:`repro.schedule`) replaces both cold starts with predictions mined from
a persistent corpus of past solves:

1. **Warm-up run** — an ``Engine(scheduler="record-only")`` solves a handful
   of suite programs exactly as an unscheduled engine would, appending one
   JSONL row per completed solve (winning strategy, per-strategy wall-clock
   including losers, final degree, verified flag) to the corpus file.
2. **Repeat run** — a *brand-new* ``Engine(scheduler="on")`` against the same
   corpus path: each request's nearest corpus neighbours pick the primary
   strategy (launched first, the rest staggered behind a learned grace
   period — never pruned) and the starting rung of the auto-degree ladder.

The corpus is a plain append-only file, so step 2 works after a process
restart just as well — that persistence is the point.

Run with::

    python examples/scheduled_synthesis.py [--corpus PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import tempfile
import time

from repro import Engine, SolveCorpus, SynthesisRequest
from repro.solvers.base import SolverOptions
from repro.suite.registry import get_benchmark

PROGRAMS = ("sum", "cohendiv", "freire1", "sqrt")
QUICK_SOLVE = SolverOptions(restarts=1, max_iterations=120, time_limit=15.0)


def request_for(name: str) -> SynthesisRequest:
    benchmark = get_benchmark(name)
    options = dataclasses.replace(
        benchmark.options(upsilon=1),
        strategy="portfolio",
        degree="auto",
        max_degree=3,
        verify="exact",
    )
    return SynthesisRequest(
        program=benchmark.source,
        precondition=benchmark.precondition,
        objective=benchmark.objective(),
        options=options,
        request_id=name,
    )


def run_pass(title: str, scheduler: str, corpus: str) -> None:
    print(f"=== {title} (scheduler={scheduler!r}) ===")
    with Engine(solver_options=QUICK_SOLVE, scheduler=scheduler, corpus=corpus) as engine:
        for name in PROGRAMS:
            start = time.perf_counter()
            response = engine.synthesize(request_for(name))
            seconds = time.perf_counter() - start
            verified = bool((response.verification or {}).get("verified"))
            degrees = [attempt["degree"] for attempt in response.escalation["attempts"]]
            line = (
                f"  {name:10s} {response.status:4s} strategy={response.strategy:13s} "
                f"degrees tried={degrees} verified={verified} {seconds:5.2f}s"
            )
            if response.timings.get("schedule_predicted"):
                line += (
                    f"  [predicted, stagger={response.timings['schedule_stagger_seconds']:.2f}s"
                    f", start rung={int(response.timings.get('schedule_start_degree', degrees[0]))}]"
                )
            print(line)
        stats = engine.stats()
        print(
            f"  engine stats: predictions={int(stats['schedule_predictions'])} "
            f"strategy hits={int(stats['schedule_strategy_hits'])} "
            f"degree hits={int(stats['schedule_degree_hits'])} "
            f"rows recorded={int(stats['schedule_rows_recorded'])}"
        )
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--corpus",
        help="corpus path to reuse across invocations (default: a throwaway tempfile)",
    )
    args = parser.parse_args()

    if args.corpus:
        corpus, cleanup = args.corpus, None
    else:
        cleanup = tempfile.TemporaryDirectory()
        corpus = os.path.join(cleanup.name, "solve_corpus.jsonl")

    try:
        run_pass("Warm-up run: record every solve outcome", "record-only", corpus)
        rows = SolveCorpus(corpus).rows()
        print(f"corpus now holds {len(rows)} rows at {corpus}")
        for row in rows:
            print(
                f"  {row.features.program_sha}  win={row.strategy:13s} "
                f"final_degree={row.final_degree} verified={row.verified}"
            )
        print()
        # A fresh engine — new caches, nothing in memory — reads the same
        # file: rows written by run 1 inform every prediction of run 2.
        run_pass("Repeat run: a new engine predicts from the corpus", "on", corpus)
    finally:
        if cleanup is not None:
            cleanup.cleanup()


if __name__ == "__main__":
    main()
