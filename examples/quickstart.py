#!/usr/bin/env python3
"""Quickstart: the paper's running example end to end.

This script reproduces Example 1 / Example 9 of the paper: for the
non-deterministic summation program of Figure 2 it

1. parses the program and builds its CFG (the labels match Figure 3),
2. runs Steps 1-3 (templates, constraint pairs, Putinar translation) with the
   objective of proving ``ret_sum < 0.5*n^2 + 0.5*n + 1`` at the endpoint,
3. prints the structural statistics (the paper's |V| and |S| columns), and
4. independently validates the paper's reported invariant by simulation.

The full Step-4 QCLP solve on this instance takes several minutes with the
SciPy back-end, so by default the script stops after the reduction; pass
``--solve`` to also attempt the solve.

Run with::

    python examples/quickstart.py [--solve]
"""

from __future__ import annotations

import argparse

from repro import (
    Engine,
    SynthesisOptions,
    SynthesisRequest,
    TargetInvariantObjective,
    build_cfg,
    build_task,
    check_invariant,
    parse_program,
)
from repro.invariants.result import Invariant
from repro.polynomial import parse_polynomial
from repro.solvers import PenaltyQCLPSolver
from repro.solvers.base import SolverOptions
from repro.spec import Precondition, parse_assertion
from repro.suite.running_example import SUM_SOURCE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--solve", action="store_true", help="also run the Step-4 QCLP solver")
    args = parser.parse_args()

    print("=== Program (Figure 2) ===")
    print(SUM_SOURCE.strip())

    program = parse_program(SUM_SOURCE)
    cfg = build_cfg(program)
    function = cfg.function("sum")
    print("\n=== CFG (Figure 3) ===")
    for transition in function.transitions:
        print(f"  {transition}")

    target = parse_polynomial("0.5*n_init^2 + 0.5*n_init + 1 - ret_sum")
    objective = TargetInvariantObjective(function="sum", label_index=9, target=target)
    options = SynthesisOptions(degree=2, upsilon=2)

    print("\n=== Steps 1-3: reduction to a quadratic system ===")
    task = build_task(SUM_SOURCE, {"sum": {1: "n >= 1"}}, objective, options)
    counts = task.system.counts()
    print(f"  program variables |V| : {cfg.variable_count()}")
    print(f"  constraint pairs      : {len(task.pairs)}")
    print(f"  quadratic system |S|  : {task.system.size}")
    print(f"  unknowns              : {counts['variables']} "
          f"({counts['template_variables']} template coefficients)")
    print(f"  reduction time        : {task.statistics['time_translation']:.2f}s")

    print("\n=== Independent validation of the paper's invariant (Appendix B.1, label 9) ===")
    precondition = Precondition.from_spec(cfg, {"sum": {1: "n >= 1"}})
    assertions = {label: parse_assertion("true") for label in function.labels}
    assertions[function.label_by_index(9)] = parse_assertion(
        "1 + 0.5*n_init + 0.5*n_init^2 - ret_sum > 0"
    )
    report = check_invariant(
        cfg,
        precondition,
        Invariant(assertions=assertions),
        argument_sets=[{"n": n} for n in range(1, 15)],
        pair_samples=0,
    )
    print(f"  {report.summary()}")

    if args.solve:
        print("\n=== Step 4: QCLP solve through the service Engine (this can take a while) ===")
        request = SynthesisRequest(
            program=SUM_SOURCE,
            mode="weak",
            precondition={"sum": {1: "n >= 1"}},
            objective=objective,
            options=options,
            solver_options=SolverOptions(restarts=2, max_iterations=400),
            deadline=600.0,
            request_id="quickstart",
        )
        with Engine() as engine:
            # The request is pure data (request.to_json() is a valid service
            # payload); the task= escape hatch reuses the reduction built above.
            response = engine.synthesize(request, solver=PenaltyQCLPSolver(request.solver_options), task=task)
        print(f"  response status: {response.status}")
        print(f"  solver status  : {response.solver_status}")
        if response.result is not None and response.result.invariant is not None:
            print("  synthesized invariant at label 9:")
            print(f"    {response.result.invariant.at_index('sum', 9)}")
    else:
        print("\n(pass --solve to also run the Step-4 QCLP solver)")


if __name__ == "__main__":
    main()
