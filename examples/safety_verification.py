#!/usr/bin/env python3
"""Safety verification with synthesized invariants (the paper's first motivation).

A small controller doubles a sensor reading and must never report a value
below ``2*x - 1`` (for a non-negative reading ``x``).  The script synthesizes
a polynomial inductive invariant whose exit assertion implies the safety
property, then re-checks the synthesized invariant independently — both by
executing the program and by falsification sampling of the consecution
conditions — before declaring the program safe.

Run with::

    python examples/safety_verification.py
"""

from __future__ import annotations

from repro import (
    SynthesisOptions,
    TargetInvariantObjective,
    build_cfg,
    check_invariant,
    parse_program,
    weak_inv_synth,
)
from repro.polynomial import parse_polynomial
from repro.solvers import PenaltyQCLPSolver
from repro.solvers.base import SolverOptions
from repro.spec import Precondition

CONTROLLER_SOURCE = """
controller(x) {
    y := x + x;
    return y
}
"""

PRECONDITION = {"controller": {1: "x >= 0"}}

# Safety property at the endpoint: the returned value exceeds 2*x - 1.
SAFETY_TARGET = "ret_controller - 2*x_init + 1"


def main() -> None:
    print("=== Program under verification ===")
    print(CONTROLLER_SOURCE.strip())
    print(f"\nSafety property: {SAFETY_TARGET} > 0 at the endpoint, given x >= 0.")

    objective = TargetInvariantObjective(
        function="controller", label_index=3, target=parse_polynomial(SAFETY_TARGET)
    )
    options = SynthesisOptions(degree=1, upsilon=2)
    solver = PenaltyQCLPSolver(SolverOptions(restarts=2, max_iterations=300))

    print("\n=== Weak invariant synthesis (RecWeakInvSynth pipeline) ===")
    result = weak_inv_synth(CONTROLLER_SOURCE, PRECONDITION, objective, options, solver)
    print(f"  solver status : {result.solver_status}")
    print(f"  |S|           : {result.system_size}")

    if not result.success:
        print("  synthesis failed; the property could not be established")
        return

    print("  synthesized inductive invariant:")
    for label, assertion in result.invariant:
        print(f"    {label}: {assertion}")

    print("\n=== Independent re-validation ===")
    cfg = build_cfg(parse_program(CONTROLLER_SOURCE))
    precondition = Precondition.from_spec(cfg, PRECONDITION)
    report = check_invariant(
        cfg,
        precondition,
        result.invariant,
        argument_sets=[{"x": value} for value in (0, 1, 3, 10, 100)],
        pair_samples=50,
    )
    print(f"  {report.summary()}")
    verdict = "SAFE" if report.passed else "UNKNOWN (validation found a problem)"
    print(f"\nVerdict: the controller is {verdict}.")


if __name__ == "__main__":
    main()
