"""The service boundary end to end: JSON requests in, JSON responses out.

This example runs the real network stack (:mod:`repro.server`): it starts
the asyncio HTTP front door on a loopback port, submits JSON request
documents over the wire with the stdlib client, and streams the response
envelopes back as they finish — including a structured rejection for the
malformed request that rides along.

Run with::

    PYTHONPATH=src python examples/service_requests.py

Pass ``--in-process`` to skip the network and drive the same documents
through :class:`~repro.api.Engine` directly (the original wire-format demo —
useful where sockets are unavailable).
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import Engine, RequestValidationError, SynthesisRequest, SynthesisResponse
from repro.server import SynthesisClient, SynthesisServer, serve_in_background
from repro.solvers.base import SolverOptions
from repro.suite.registry import get_benchmark


def client_side() -> list[str]:
    """Build requests as a client would and ship them as JSON documents."""
    documents = []
    for name in ("sum", "freire1"):
        benchmark = get_benchmark(name)
        request = SynthesisRequest(
            program=benchmark.source,
            mode="weak",
            precondition=benchmark.precondition,
            objective=benchmark.objective(),
            options=benchmark.options(upsilon=1),
            solver_options=SolverOptions(restarts=1, max_iterations=120),
            deadline=30.0,
            request_id=name,
        )
        documents.append(request.to_json())
    # A malformed document sneaks into the batch (wrong mode, no program).
    documents.append(json.dumps({"mode": "weakest", "program": ""}))
    return documents


def print_envelope(envelope: dict) -> None:
    if envelope["status"] == "error":
        error = envelope.get("error") or {}
        print(f"\n  response ({envelope.get('request_id') or '<malformed>'}): error")
        for entry in error.get("errors", []):
            print(f"    {entry['field']}: {entry['reason']}")
        if not error.get("errors"):
            print(f"    {error.get('type')}: {error.get('message')}")
        return
    print(f"\n  response #{envelope['submission_id']} ({envelope['request_id']}): {envelope['status']}")
    if envelope["status"] == "ok":
        best = envelope["invariants"][0]["assertions"][-1]
        print(f"    invariant at {best['function']}:{best['index']}: {best['text']}")
        print(f"    solver: {envelope['solver_status']} via {envelope['strategy']} "
              f"in {envelope['timings']['solve_seconds']:.2f}s")
        if envelope.get("served_from_store"):
            print("    served from the persistent store (nothing recomputed)")


def over_the_wire(documents: list[str]) -> None:
    """Start the HTTP front door and drive the documents through it."""
    server = SynthesisServer(workers=2)
    with serve_in_background(server) as handle:
        print(f"  server listening on {handle.url}")
        client = SynthesisClient(handle.url)
        print(f"  health: {client.healthz()['status']}")

        job = client.submit([json.loads(document) for document in documents])
        print(f"  job {job['job_id']}: {job['accepted']} accepted, {job['rejected']} rejected")
        for envelope in client.events(job["job_id"]):
            # The envelope is pure data: it survives the wire and reloads
            # (rejected documents carry validation errors instead).
            if envelope.get("submission_id") is not None:
                SynthesisResponse.from_dict(envelope)
            print_envelope(envelope)

        # The blocking endpoint answers one document at a time.
        single = client.synthesize(json.loads(documents[0]))
        print(f"\n  blocking /v1/synthesize: {single['request_id']} -> {single['status']}")
        stats = client.stats()
        print(f"  server stats: {int(stats['server_requests_total'])} requests, "
              f"{int(stats['server_validation_failures'])} validation failures")


def in_process(documents: list[str]) -> None:
    """Validate, execute and answer without sockets (the original demo loop)."""
    requests = []
    for position, document in enumerate(documents):
        try:
            requests.append(SynthesisRequest.from_json(document))
        except RequestValidationError as exc:
            print(f"  rejected document #{position}:")
            for entry in exc.errors:
                print(f"    {entry['field']}: {entry['reason']}")

    with Engine(workers=2) as engine:
        for response in engine.map(requests):
            envelope = response.to_json()
            revived = SynthesisResponse.from_json(envelope)
            assert revived == response
            print_envelope(json.loads(envelope))


def main() -> int:
    print("=== client: building JSON request documents ===")
    documents = client_side()
    for document in documents:
        preview = json.loads(document)
        print(f"  {preview.get('request_id') or '<malformed>'}: {len(document)} bytes")

    if "--in-process" in sys.argv[1:]:
        print("\n=== in-process: validating, executing, answering ===")
        in_process(documents)
    else:
        print("\n=== over the wire: HTTP server + stdlib client ===")
        over_the_wire(documents)
    return 0


if __name__ == "__main__":
    sys.exit(main())
