"""The service boundary end to end: JSON requests in, JSON responses out.

This example plays both sides of the wire protocol a queue/HTTP front-end
would speak:

1. a *client* builds typed :class:`~repro.api.request.SynthesisRequest`
   values and serialises them to JSON documents,
2. a *server* deserialises (and validates) the documents, runs them on an
   :class:`~repro.api.Engine`, and streams JSON responses back as they
   finish — including a structured error for the malformed request that
   rides along.

Run with::

    PYTHONPATH=src python examples/service_requests.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.api import Engine, RequestValidationError, SynthesisRequest, SynthesisResponse
from repro.solvers.base import SolverOptions
from repro.suite.registry import get_benchmark


def client_side() -> list[str]:
    """Build requests as a client would and ship them as JSON documents."""
    documents = []
    for name in ("sum", "freire1"):
        benchmark = get_benchmark(name)
        request = SynthesisRequest(
            program=benchmark.source,
            mode="weak",
            precondition=benchmark.precondition,
            objective=benchmark.objective(),
            options=benchmark.options(upsilon=1),
            solver_options=SolverOptions(restarts=1, max_iterations=120),
            deadline=30.0,
            request_id=name,
        )
        documents.append(request.to_json())
    # A malformed document sneaks into the batch (wrong mode, no program).
    documents.append(json.dumps({"mode": "weakest", "program": ""}))
    return documents


def server_side(documents: list[str]) -> None:
    """Validate, execute and answer — the loop a service front-end runs."""
    requests = []
    for position, document in enumerate(documents):
        try:
            requests.append(SynthesisRequest.from_json(document))
        except RequestValidationError as exc:
            print(f"  rejected document #{position}:")
            for entry in exc.errors:
                print(f"    {entry['field']}: {entry['reason']}")

    with Engine(workers=2) as engine:
        for response in engine.map(requests):
            print(f"\n  response #{response.submission_id} ({response.request_id}): {response.status}")
            envelope = response.to_json(indent=2)
            # The envelope is pure data: it survives the wire and reloads.
            revived = SynthesisResponse.from_json(envelope)
            assert revived == response
            if response.success:
                best = response.invariants[0]["assertions"][-1]
                print(f"    invariant at {best['function']}:{best['index']}: {best['text']}")
                print(f"    solver: {response.solver_status} via {response.strategy} "
                      f"in {response.timings['solve_seconds']:.2f}s")
            print(f"    envelope: {len(envelope)} bytes of JSON")


def main() -> int:
    print("=== client: building JSON request documents ===")
    documents = client_side()
    for document in documents:
        preview = json.loads(document)
        print(f"  {preview.get('request_id') or '<malformed>'}: {len(document)} bytes")

    print("\n=== server: validating, executing, answering ===")
    server_side(documents)
    return 0


if __name__ == "__main__":
    sys.exit(main())
