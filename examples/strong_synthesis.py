#!/usr/bin/env python3
"""Strong invariant synthesis: a representative set of invariants.

The paper's StrongInvSynth asks for one representative per connected component
of the solution space.  This script runs the practical enumeration
(multi-start + clustering, the substitute for Grigor'ev-Vorobjov described in
DESIGN.md) on a small program whose invariant space has visibly distinct
shapes, and prints the distinct invariants found.

Run with::

    python examples/strong_synthesis.py
"""

from __future__ import annotations

from repro import SynthesisOptions, strong_inv_synth
from repro.solvers import RepresentativeEnumerator
from repro.solvers.base import SolverOptions

COUNTER_SOURCE = """
counter(n) {
    i := 0;
    while i < n do
        i := i + 1
    od;
    return i
}
"""


def main() -> None:
    print("=== Program ===")
    print(COUNTER_SOURCE.strip())

    options = SynthesisOptions(degree=1, upsilon=1, with_witness=False)
    enumerator = RepresentativeEnumerator(
        attempts=8,
        distance_threshold=0.2,
        options=SolverOptions(max_iterations=200, seed=1),
    )

    print("\n=== StrongInvSynth (representative enumeration) ===")
    result = strong_inv_synth(COUNTER_SOURCE, {"counter": {1: "n >= 0"}}, options, enumerator)
    print(f"  solver status        : {result.solver_status}")
    print(f"  quadratic system |S| : {result.system_size}")
    print(f"  attempts             : {int(result.statistics.get('enumeration_attempts', 0))}")
    print(f"  feasible attempts    : {int(result.statistics.get('enumeration_feasible', 0))}")
    print(f"  representatives      : {len(result.invariants)}")

    for index, invariant in enumerate(result.invariants):
        print(f"\n--- Representative invariant #{index + 1} ---")
        for label, assertion in invariant:
            if not assertion.is_true():
                print(f"  {label}: {assertion}")


if __name__ == "__main__":
    main()
